package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prany/internal/history"
	"prany/internal/metrics"
	"prany/internal/obs"
	"prany/internal/wal"
	"prany/internal/wire"
)

// Strategy selects how a coordinator integrates heterogeneous participants.
type Strategy uint8

const (
	// StrategyPrAny is the paper's protocol: a homogeneous participant set
	// runs its native variant; a heterogeneous one runs Presumed Any, with
	// the forced initiation record, per-outcome acknowledgment subsets,
	// and the dynamic per-inquirer presumption (Section 4).
	StrategyPrAny Strategy = iota
	// StrategyU2PC is the union 2PC straw man of Section 2: the
	// coordinator logs and presumes per its own Native protocol, speaks
	// each participant's dialect, and forgets as soon as every ack that
	// *will* come has come. Theorem 1: it violates atomicity.
	StrategyU2PC
	// StrategyC2PC is the coordinator 2PC straw man of Section 3: like
	// U2PC, but it refuses to forget until *every* decision recipient has
	// acknowledged — which PrA participants never do for aborts and PrC
	// participants never do for commits. Theorem 2: functionally correct,
	// operationally not.
	StrategyC2PC
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyU2PC:
		return "U2PC"
	case StrategyC2PC:
		return "C2PC"
	default:
		return "PrAny"
	}
}

// CoordinatorConfig configures a coordinator engine.
type CoordinatorConfig struct {
	Strategy Strategy
	// Native is the coordinator's own protocol under U2PC and C2PC (PrN,
	// PrA or PrC). Ignored by StrategyPrAny.
	Native wire.Protocol
	// VoteTimeout bounds the voting phase; a silent participant is treated
	// as a no vote. Zero means 500ms.
	VoteTimeout time.Duration
	// FixedPresumption is an ablation knob: when set with StrategyPrAny,
	// post-forget inquiries are answered with FixedOutcome instead of the
	// inquirer's own presumption. It exists to demonstrate that the
	// dynamic per-inquirer presumption is load-bearing — a fixed one
	// re-creates the Theorem 1 violations (see BenchmarkAblation and
	// TestAblationFixedPresumption).
	FixedPresumption bool
	FixedOutcome     wire.Outcome
	// NewDecider, when set, builds the decision fix-point for this
	// coordinator — a replicated decider (internal/consensus) makes the
	// decision durable on an acceptor quorum instead of the local log.
	// Nil means SingleDecider: the paper's force-then-send path.
	NewDecider func(env Env) Decider
	// EpochCommit enables epoch-batched decision sealing: concurrent
	// record-bearing decisions are made durable with one batched
	// KRecEpochDecision record and fanned out in one cross-transaction
	// batch per destination. Off by default (every committed BENCH number
	// reproduces with it off); ignored under a replicated decider (the
	// quorum round is the decision's durability there) and bypassed under
	// a serial scheduler (the model checker sees the unbatched path).
	EpochCommit bool
	// EpochWindow is the opt-in epoch linger: a positive window makes the
	// sealer wait that long before sealing so more decisions join the
	// epoch. Zero (the default) is pure piggybacking — seal immediately
	// when idle, batch whatever accumulated while the previous epoch's
	// force was in flight.
	EpochWindow time.Duration
}

type cstate uint8

const (
	cVoting   cstate = iota
	cDraining        // decision sent; collecting expected acks
	cDeciding        // replicated decision in flight; outcome not yet fixed
)

type cpart struct {
	proto        wire.Protocol
	voted        bool
	vote         wire.Vote
	expectAck    bool
	acked        bool
	sentDecision bool
	// resends counts decision re-sends to this participant; resendDue is
	// the Tick count before which the next re-send is suppressed (capped
	// jittered exponential backoff, mirroring the TCP redial policy).
	resends   int
	resendDue uint64
	// writes is the write set a coordinator-log participant shipped with
	// its vote (force-logged in a remote-writes record); re-driven
	// decisions to CL sites attach it.
	writes []wal.Update
}

type ctxn struct {
	txn       wire.TxnID
	state     cstate
	parts     map[wire.SiteID]*cpart
	order     []wire.SiteID
	chosen    wire.Protocol // PrN, PrA, PrC or PrAny
	decided   bool
	outcome   wire.Outcome
	votesDone chan struct{}
	voteOnce  sync.Once

	// decideDone closes when a replicated decision fixes (nil under the
	// single decider, whose decisions fix synchronously).
	decideDone chan struct{}
	decideOnce sync.Once

	// startedAt and decidedAt time the entry for latency histograms and the
	// /txns age column. Zero when the site is un-instrumented (Env.now);
	// deliberately absent from DebugState so model-checker state hashing
	// stays timestamp-free.
	startedAt time.Time
	decidedAt time.Time
}

func (ct *ctxn) closeVotes() { ct.voteOnce.Do(func() { close(ct.votesDone) }) }

// allVotesIn reports whether every participant voted or some vote is no —
// either way the voting phase can end.
func (ct *ctxn) allVotesIn() bool {
	all := true
	for _, p := range ct.parts {
		if !p.voted {
			all = false
			continue
		}
		if p.vote == wire.VoteNo {
			return true
		}
	}
	return all
}

// Coordinator is one site's coordinator-side engine. Its protocol table is
// sharded by transaction-id hash so unrelated transactions never contend on
// one mutex; each ctxn's fields are guarded by its shard's lock.
type Coordinator struct {
	env     Env
	cfg     CoordinatorConfig
	pcp     *PCP
	decider Decider

	txns *shardedTable[*ctxn] // the protocol table

	// epoch, when non-nil, batches record-bearing decisions into sealed
	// epochs (EpochCommit on, single decider). wheel services the commit
	// path's vote-wait deadlines with one goroutine instead of one runtime
	// timer per transaction.
	epoch *epochSealer
	wheel *deadlineWheel

	// ticks counts Tick calls; the decision re-send backoff is measured in
	// these units. jitterMu guards jitter, the backoff randomizer.
	ticks    atomic.Uint64
	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// NewCoordinator builds a coordinator engine over the given PCP table.
func NewCoordinator(env Env, cfg CoordinatorConfig, pcp *PCP) *Coordinator {
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 500 * time.Millisecond
	}
	if cfg.Strategy != StrategyPrAny && !cfg.Native.ParticipantProtocol() {
		panic("core: U2PC/C2PC need a native protocol of PrN, PrA or PrC")
	}
	var onContend func()
	if env.Met != nil {
		met, id := env.Met, env.ID
		onContend = func() { met.ShardWait(id) }
	}
	c := &Coordinator{
		env: env, cfg: cfg, pcp: pcp, txns: newShardedTable[*ctxn](onContend),
		jitter: rand.New(rand.NewSource(int64(len(env.ID)) + 1)),
	}
	if cfg.NewDecider != nil {
		c.decider = cfg.NewDecider(env)
	} else {
		c.decider = NewSingleDecider(env)
	}
	c.wheel = newDeadlineWheel()
	if cfg.EpochCommit && !c.decider.Replicated() {
		c.epoch = newEpochSealer(c, cfg.EpochWindow)
	}
	return c
}

// Stop terminates the coordinator's background machinery — the epoch
// sealer (pending decisions fail with ErrSiteDown) and the deadline wheel
// (pending vote waits wake as if their timeout fired; the follow-up work
// fails on the dead site). The site layer calls it on crash; recovery
// builds a fresh coordinator.
func (c *Coordinator) Stop() {
	if c.epoch != nil {
		c.epoch.stop()
	}
	c.wheel.stop()
}

// Decider returns the coordinator's decision fix-point (for tests and
// introspection).
func (c *Coordinator) Decider() Decider { return c.decider }

// choose picks the per-transaction protocol. Under PrAny it is the Section
// 4.1 selection rule; U2PC and C2PC always run the coordinator's native
// protocol regardless of the participant mix — that is their flaw.
func (c *Coordinator) choose(protos []wire.Protocol) wire.Protocol {
	if c.cfg.Strategy == StrategyPrAny {
		return Select(protos)
	}
	return c.cfg.Native
}

// Commit runs the two phases for txn across parts and returns the outcome.
// It returns once the decision is fixed and sent; acknowledgment draining,
// the end record and forgetting complete asynchronously through Handle and
// Tick. An error means the transaction could not even be driven to a
// decision (site down, log failure); no decision was communicated.
func (c *Coordinator) Commit(txn wire.TxnID, parts []wire.SiteID) (wire.Outcome, error) {
	start := c.env.now()
	ct, prepares, err := c.begin(txn, parts)
	if err != nil {
		return wire.Abort, err
	}
	if prepares > 0 {
		e := c.wheel.add(time.Now().Add(c.cfg.VoteTimeout))
		select {
		case <-ct.votesDone:
			c.wheel.cancel(e)
		case <-e.expired:
		}
	}
	outcome, err := c.resolve(ct)
	if errors.Is(err, ErrDecidePending) {
		outcome, err = c.awaitDecision(ct)
	}
	if err == nil {
		c.env.observe(metrics.SpanCommit, start)
	}
	return outcome, err
}

// awaitDecision blocks until an in-flight decision fixes (a replicated
// decider's quorum round, or another caller's epoch seal), or the vote
// timeout elapses again without one.
func (c *Coordinator) awaitDecision(ct *ctxn) (wire.Outcome, error) {
	e := c.wheel.add(time.Now().Add(c.cfg.VoteTimeout))
	select {
	case <-ct.decideDone:
		c.wheel.cancel(e)
		sh := c.txns.lock(ct.txn)
		outcome := ct.outcome
		sh.mu.Unlock()
		return outcome, nil
	case <-e.expired:
		return wire.Abort, ErrDecidePending
	}
}

// Begin runs only the voting phase's setup: protocol-table insert, the
// forced initiation record when the chosen variant needs one, and the
// prepare fan-out. It never blocks on votes — a deterministic driver (the
// model checker) delivers them itself and ends the phase with Resolve. The
// production path is Commit, which is Begin + vote wait + Resolve.
func (c *Coordinator) Begin(txn wire.TxnID, parts []wire.SiteID) error {
	_, _, err := c.begin(txn, parts)
	return err
}

// Resolve ends txn's voting phase now — as if the vote timeout fired —
// deciding commit if every vote is an explicit yes and abort otherwise,
// then performs the decision phase. Calling it for a transaction already
// past voting returns the fixed outcome; for an unknown transaction it
// errors.
func (c *Coordinator) Resolve(txn wire.TxnID) (wire.Outcome, error) {
	sh := c.txns.lock(txn)
	ct := sh.m[txn]
	sh.mu.Unlock()
	if ct == nil {
		return wire.Abort, fmt.Errorf("core: transaction %s not in protocol table", txn)
	}
	return c.resolve(ct)
}

// VoteStatus reports txn's voting phase: open means the transaction exists
// and is still voting; done means every vote that can end the phase is in
// (all voted, or some no). A driver uses it to decide between delivering
// more votes and firing the timeout via Resolve.
func (c *Coordinator) VoteStatus(txn wire.TxnID) (open, done bool) {
	sh := c.txns.lock(txn)
	ct := sh.m[txn]
	if ct == nil {
		sh.mu.Unlock()
		return false, false
	}
	open = ct.state == cVoting
	sh.mu.Unlock()
	select {
	case <-ct.votesDone:
		done = true
	default:
	}
	return open, done
}

// begin is the voting-phase setup shared by Commit and Begin; it returns
// the inserted entry and how many prepares went out.
func (c *Coordinator) begin(txn wire.TxnID, parts []wire.SiteID) (*ctxn, int, error) {
	if len(parts) == 0 {
		return nil, 0, fmt.Errorf("core: transaction %s has no participants", txn)
	}
	ct := &ctxn{
		txn:       txn,
		parts:     make(map[wire.SiteID]*cpart, len(parts)),
		votesDone: make(chan struct{}),
		startedAt: c.env.now(),
	}
	if c.decider.Replicated() || c.epoch != nil {
		// Replicated decisions fix asynchronously; epoch-sealed ones fix on
		// the sealer goroutine — either way a duplicate Resolve racing the
		// fix-point waits on this channel instead of re-deciding.
		ct.decideDone = make(chan struct{})
	}
	protos := make([]wire.Protocol, 0, len(parts))
	for _, id := range parts {
		proto, ok := c.pcp.Lookup(id)
		if !ok {
			return nil, 0, fmt.Errorf("core: participant %s not in PCP table", id)
		}
		p := &cpart{proto: proto}
		if proto.OnePhase() {
			// Implicit yes-vote: every operation acknowledgment this
			// participant sent was a durable vote, so it stands as a yes
			// voter with no prepare round. (The caller must only include
			// one-phase sites whose operations all acknowledged — the
			// transaction manager guarantees that.)
			p.voted = true
			p.vote = wire.VoteYes
		}
		ct.parts[id] = p
		ct.order = append(ct.order, id)
		protos = append(protos, proto)
	}
	ct.chosen = c.choose(protos)

	sh := c.txns.lock(txn)
	if _, dup := sh.m[txn]; dup {
		sh.mu.Unlock()
		return nil, 0, fmt.Errorf("core: transaction %s already in protocol table", txn)
	}
	sh.m[txn] = ct
	sh.mu.Unlock()
	if c.env.Met != nil {
		c.env.Met.PTInsert(c.env.ID)
	}
	c.env.trace(obs.Event{Kind: obs.EvBegin, Txn: txn, Note: ct.chosen.String()})

	// Voting phase. PrC and PrAny force an initiation record naming every
	// participant — and, for PrAny, each participant's protocol — before
	// any prepare is sent: without it, a coordinator crash would leave
	// undecided transactions indistinguishable from presumable ones. A
	// replicated decider forces it for *every* chosen variant: the record
	// is what tells recovery to learn the outcome from the acceptors
	// instead of presuming, and names the roster to finish with.
	if ct.chosen == wire.PrC || ct.chosen == wire.PrAny || c.decider.Replicated() {
		if err := c.env.force(wal.Record{
			Kind: wal.KInitiation, Role: wal.RoleCoord, Txn: txn, Participants: c.infoList(ct),
		}); err != nil {
			c.drop(txn)
			return nil, 0, err
		}
	}
	var prepares []wire.Message
	for _, id := range ct.order {
		if ct.parts[id].proto.OnePhase() {
			continue // implicitly prepared; no voting round
		}
		prepares = append(prepares, wire.Message{Kind: wire.MsgPrepare, Txn: txn, From: c.env.ID, To: id})
	}
	if c.env.Obs != nil {
		for _, m := range prepares {
			c.env.trace(obs.Event{Kind: obs.EvPrepareSend, Txn: txn, Peer: m.To})
		}
	}
	c.env.fanout(prepares)
	return ct, len(prepares), nil
}

// resolve is the decision half shared by Commit and Resolve: it closes the
// voting phase on whatever votes are in and decides. A transaction already
// decided (a duplicate Resolve, or recovery got there first) just returns
// the fixed outcome.
func (c *Coordinator) resolve(ct *ctxn) (wire.Outcome, error) {
	sh := c.txns.lock(ct.txn)
	if ct.state != cVoting {
		outcome, decided := ct.outcome, ct.decided
		sh.mu.Unlock()
		if !decided {
			return outcome, ErrDecidePending // replicated decision in flight
		}
		return outcome, nil
	}
	outcome := wire.Abort
	if ct.allYes() {
		outcome = wire.Commit
	}
	epoch := c.sealsInEpoch(ct, outcome)
	if c.decider.Replicated() || epoch {
		// Claim the decision now, under the lock: a replicated decide
		// completes asynchronously, an epoch seal on the sealer goroutine —
		// a duplicate Resolve racing in must wait for the fix-point, not
		// start a second decision.
		ct.state = cDeciding
	}
	sh.mu.Unlock()

	if epoch {
		return c.epoch.submit(ct, outcome)
	}
	return c.decide(ct, outcome)
}

// sealsInEpoch reports whether ct's decision goes through the epoch sealer:
// epoch batching on, not under a serial scheduler (deterministic drivers
// must see the unbatched path, bit for bit), and only for decisions that
// force a record — a presumable abort has no force to amortize and takes
// the direct path unchanged.
func (c *Coordinator) sealsInEpoch(ct *ctxn, outcome wire.Outcome) bool {
	if c.epoch == nil || c.env.serial() {
		return false
	}
	return outcome == wire.Commit || c.logsAbortRecord(ct)
}

func (ct *ctxn) allYes() bool {
	for _, p := range ct.parts {
		if !p.voted || p.vote == wire.VoteNo {
			return false
		}
	}
	return true
}

// infoList snapshots the participant set with protocols for log records.
func (c *Coordinator) infoList(ct *ctxn) []wal.ParticipantInfo {
	out := make([]wal.ParticipantInfo, 0, len(ct.order))
	for _, id := range ct.order {
		out = append(out, wal.ParticipantInfo{ID: id, Proto: ct.parts[id].proto})
	}
	return out
}

// decide fixes the outcome through the decider, then performs the decision
// phase: send the decision and start draining acknowledgments. Under a
// replicated decider the fix-point may complete asynchronously, in which
// case ErrDecidePending is returned and finalize runs from the consensus
// delivery path.
func (c *Coordinator) decide(ct *ctxn, outcome wire.Outcome) (wire.Outcome, error) {
	req := DecideRequest{
		Txn:       ct.txn,
		Chosen:    ct.chosen,
		Outcome:   outcome,
		Roster:    c.infoList(ct),
		LogsAbort: c.logsAbortRecord(ct),
	}
	if c.decider.Replicated() {
		req.Votes = c.instanceVotes(ct)
	}
	fixed, done, err := c.decider.Decide(req, func(o wire.Outcome) { c.finalize(ct, o) })
	if err != nil {
		return fixed, err
	}
	if !done {
		return fixed, ErrDecidePending
	}
	c.finalize(ct, fixed)
	return fixed, nil
}

// instanceVotes maps the participant votes onto per-participant consensus
// instance values: explicit and read-only yes votes propose yes, no votes
// and silent participants propose no — the conjunction is the outcome, so a
// takeover leader recomputes exactly the coordinator's decision rule.
func (c *Coordinator) instanceVotes(ct *ctxn) []wire.InstanceVote {
	out := make([]wire.InstanceVote, 0, len(ct.order))
	for _, id := range ct.order {
		p := ct.parts[id]
		v := wire.VoteNo
		if p.voted && p.vote != wire.VoteNo {
			v = wire.VoteYes
		}
		out = append(out, wire.InstanceVote{Part: id, Vote: v})
	}
	return out
}

// finalize is the decision phase after the fix-point: record the decide
// event, mark the entry decided, send the decision messages and start
// draining. It runs at most once per transaction (a duplicate call — the
// replicated decider's callback racing a recovery — is a no-op).
func (c *Coordinator) finalize(ct *ctxn, outcome wire.Outcome) {
	msgs, finished := c.finalizeCollect(ct, outcome)
	c.env.fanout(msgs)
	if finished {
		c.decider.Finished(ct.txn, outcome)
	}
}

// finalizeCollect performs finalize's table transition and returns the
// decision messages instead of sending them, so an epoch seal can merge the
// whole epoch's fan-out into one batch. finished reports that the entry
// already drained (nothing to ack) and the caller owes decider.Finished
// after the fan-out.
func (c *Coordinator) finalizeCollect(ct *ctxn, outcome wire.Outcome) (msgs []wire.Message, finished bool) {
	sh := c.txns.lock(ct.txn)
	if ct.decided {
		sh.mu.Unlock()
		return nil, false
	}
	sh.mu.Unlock()

	c.env.event(history.Event{Kind: history.EvDecide, Txn: ct.txn, Outcome: outcome})
	c.env.trace(obs.Event{Kind: obs.EvDecide, Txn: ct.txn, Note: outcome.String()})

	sh = c.txns.lock(ct.txn)
	if ct.decided {
		sh.mu.Unlock()
		return nil, false
	}
	ct.decided = true
	ct.outcome = outcome
	ct.state = cDraining
	ct.decidedAt = c.env.now()
	msgs = c.decisionMsgsLocked(ct)
	finished = c.maybeFinishLocked(sh.m, ct)
	sh.mu.Unlock()
	if ct.decideDone != nil {
		ct.decideOnce.Do(func() { close(ct.decideDone) })
	}
	c.env.observe(metrics.SpanPrepare, ct.startedAt)

	if c.env.Obs != nil {
		for _, m := range msgs {
			c.env.trace(obs.Event{Kind: obs.EvDecisionSend, Txn: ct.txn, Peer: m.To, Note: outcome.String()})
		}
	}
	return msgs, finished
}

// logsAbortRecord reports whether this transaction's variant forces an
// abort decision record: presumed nothing, and coordinator log — whose
// coordinator still owes its participants their acknowledgment-pending
// memory across a crash, with no initiation record to reconstruct an
// undecided abort from.
func (c *Coordinator) logsAbortRecord(ct *ctxn) bool {
	return ct.chosen == wire.PrN || ct.chosen == wire.CL
}

// decisionMsgsLocked computes the decision recipients, marks the expected
// acknowledgment set, and returns the messages to send.
//
// Recipients: a commit goes to every participant that voted yes (all of
// them, by definition of commit) except read-only voters, who left the
// protocol at their vote. An abort goes to everyone except no-voters (who
// aborted unilaterally and forgot) and read-only voters — including silent
// participants, whose yes vote may have been lost and who may therefore be
// blocked in the prepared state.
//
// Expected acks per strategy:
//
//	PrAny:  recipients whose own protocol acknowledges this outcome — the
//	        PrN∪PrA set for commits, PrN∪PrC for aborts (Figure 1).
//	U2PC:   as PrAny when the native protocol collects acks for this
//	        outcome at all, empty otherwise (native PrA forgets aborts
//	        immediately; native PrC forgets commits immediately).
//	C2PC:   every recipient, whether or not its protocol will ever ack.
func (c *Coordinator) decisionMsgsLocked(ct *ctxn) []wire.Message {
	var msgs []wire.Message
	for _, id := range ct.order {
		p := ct.parts[id]
		if p.voted && p.vote == wire.VoteReadOnly {
			continue
		}
		if ct.outcome == wire.Abort && p.voted && p.vote == wire.VoteNo {
			continue
		}
		p.sentDecision = true
		p.expectAck = c.expectsAck(ct, p)
		msgs = append(msgs, wire.Message{
			Kind: wire.MsgDecision, Txn: ct.txn, From: c.env.ID, To: id, Outcome: ct.outcome,
		})
	}
	return msgs
}

func (c *Coordinator) expectsAck(ct *ctxn, p *cpart) bool {
	switch c.cfg.Strategy {
	case StrategyC2PC:
		return true
	case StrategyU2PC:
		if !c.cfg.Native.Acks(ct.outcome) {
			return false // native protocol forgets this outcome at once
		}
		return p.proto.Acks(ct.outcome)
	default:
		return p.proto.Acks(ct.outcome)
	}
}

// needsEnd reports whether an end record is written when draining
// completes. A variant that forgets an outcome immediately (PrA aborts,
// PrC commits) leaves no records needing the end marker.
func (c *Coordinator) needsEnd(ct *ctxn) bool {
	proto := ct.chosen
	if c.cfg.Strategy == StrategyC2PC {
		return true
	}
	switch proto {
	case wire.PrA, wire.IYV: // IYV follows presumed-abort discipline
		return ct.outcome == wire.Commit
	case wire.PrC:
		return ct.outcome == wire.Abort
	default: // PrN, PrAny
		return true
	}
}

// maybeFinishLocked checks whether every expected ack arrived; if so it
// writes the end record (when the variant calls for one) and deletes the
// transaction from its shard map m (the caller holds that shard's lock) —
// the coordinator forgets.
func (c *Coordinator) maybeFinishLocked(m map[wire.TxnID]*ctxn, ct *ctxn) bool {
	if ct.state != cDraining {
		return false
	}
	for _, p := range ct.parts {
		if p.expectAck && !p.acked {
			return false
		}
	}
	if c.needsEnd(ct) {
		_ = c.env.appendLazy(wal.Record{Kind: wal.KEnd, Role: wal.RoleCoord, Txn: ct.txn})
	}
	delete(m, ct.txn)
	if c.env.Met != nil {
		c.env.Met.PTDelete(c.env.ID)
	}
	c.env.event(history.Event{Kind: history.EvDeletePT, Txn: ct.txn})
	c.env.observe(metrics.SpanAck, ct.decidedAt)
	c.env.trace(obs.Event{Kind: obs.EvPTDelete, Txn: ct.txn})
	return true
}

// drop removes a transaction that never reached a decision (setup failure).
func (c *Coordinator) drop(txn wire.TxnID) {
	sh := c.txns.lock(txn)
	delete(sh.m, txn)
	sh.mu.Unlock()
	if c.env.Met != nil {
		c.env.Met.PTDelete(c.env.ID)
	}
}

// Handle processes one inbound message addressed to the coordinator role:
// VOTE, ACK or INQUIRY.
func (c *Coordinator) Handle(m wire.Message) {
	switch m.Kind {
	case wire.MsgVote:
		c.handleVote(m)
	case wire.MsgAck:
		c.handleAck(m)
	case wire.MsgInquiry:
		c.handleInquiry(m)
	case wire.MsgRecoverSite:
		c.handleRecoverSite(m)
	case wire.MsgPhase1b, wire.MsgPhase2b:
		c.decider.HandlePhase(m)
	}
}

// handleRecoverSite serves a coordinator-log participant's restart
// announcement: every decided transaction still awaiting that site's
// acknowledgment is re-driven with the logged write set attached, and the
// announcement is echoed back afterwards so the site can lift its recovery
// fence (per-destination FIFO guarantees the decisions arrive first).
func (c *Coordinator) handleRecoverSite(m wire.Message) {
	var msgs []wire.Message
	c.txns.each(func(tbl map[wire.TxnID]*ctxn) {
		for _, ct := range tbl {
			if ct.state != cDraining {
				continue
			}
			p := ct.parts[m.From]
			if p == nil || !p.expectAck || p.acked {
				continue
			}
			p.sentDecision = true
			msgs = append(msgs, wire.Message{
				Kind: wire.MsgDecision, Txn: ct.txn, From: c.env.ID, To: m.From,
				Outcome: ct.outcome, Writes: p.writes,
			})
		}
	})
	// All re-driven decisions share one destination, so fanout sends them
	// in order and returns before the echo goes out — the per-destination
	// FIFO the recovering site's fence relies on.
	sortMsgs(msgs)
	c.env.fanout(msgs)
	// The echo carries PrAny as the sender protocol so site-level routing
	// can tell it apart from a participant's announcement.
	c.env.send(wire.Message{Kind: wire.MsgRecoverSite, From: c.env.ID, To: m.From, Proto: wire.PrAny})
}

func (c *Coordinator) handleVote(m wire.Message) {
	c.env.trace(obs.Event{Kind: obs.EvVoteRecv, Txn: m.Txn, Peer: m.From, Note: m.Vote.String()})
	sh := c.txns.lock(m.Txn)
	ct := sh.m[m.Txn]
	if ct == nil || ct.state != cVoting {
		sh.mu.Unlock()
		return // late vote for a decided or forgotten transaction
	}
	p := ct.parts[m.From]
	if p == nil || p.voted {
		sh.mu.Unlock()
		return
	}

	if p.proto.ShipsWrites() && m.Vote == wire.VoteYes {
		// Coordinator log: the participant's write set must be stable
		// *here* before its yes vote counts — this log is the
		// participant's only memory.
		sh.mu.Unlock()
		if err := c.env.force(wal.Record{
			Kind: wal.KRemoteWrites, Role: wal.RoleCoord, Txn: m.Txn,
			Coord: m.From, Writes: m.Writes,
		}); err != nil {
			return // vote uncounted; the timeout will abort
		}
		sh = c.txns.lock(m.Txn)
		// Re-validate: the transaction may have been decided (timeout
		// abort) while the force ran.
		if ct = sh.m[m.Txn]; ct == nil || ct.state != cVoting {
			sh.mu.Unlock()
			return
		}
		if p = ct.parts[m.From]; p == nil || p.voted {
			sh.mu.Unlock()
			return
		}
		p.writes = m.Writes
	}

	p.voted = true
	p.vote = m.Vote
	if ct.allVotesIn() {
		ct.closeVotes()
	}
	sh.mu.Unlock()
}

func (c *Coordinator) handleAck(m wire.Message) {
	c.env.trace(obs.Event{Kind: obs.EvAckRecv, Txn: m.Txn, Peer: m.From})
	sh := c.txns.lock(m.Txn)
	ct := sh.m[m.Txn]
	if ct == nil {
		sh.mu.Unlock()
		return // ack after forgetting: the protocol violation U2PC ignores
	}
	p := ct.parts[m.From]
	if p == nil {
		sh.mu.Unlock()
		return
	}
	p.acked = true
	finished := c.maybeFinishLocked(sh.m, ct)
	outcome := ct.outcome
	sh.mu.Unlock()
	if finished {
		c.decider.Finished(ct.txn, outcome)
	}
}

// handleInquiry answers a participant blocked in doubt. With the
// transaction still in the protocol table, the recorded decision is
// returned (or nothing yet, if voting is unresolved — the participant will
// re-inquire). After the coordinator has forgotten, the answer comes from a
// presumption:
//
//	PrAny: the *inquirer's own* protocol's presumption — commit for a PrC
//	       participant, abort for PrA or PrN. The safe state (Definition 2)
//	       guarantees exactly one presumption can still be reached here.
//	U2PC / C2PC: the coordinator's native presumption, right or wrong —
//	       this is the Theorem 1 bug, preserved deliberately.
func (c *Coordinator) handleInquiry(m wire.Message) {
	sh := c.txns.lock(m.Txn)
	ct := sh.m[m.Txn]
	if ct != nil {
		if !ct.decided {
			sh.mu.Unlock()
			return // still voting; decision (or timeout abort) is coming
		}
		outcome := ct.outcome
		sh.mu.Unlock()
		c.respond(m, outcome)
		return
	}
	sh.mu.Unlock()

	outcome := c.presumeFor(m)
	c.respond(m, outcome)
}

// presumeFor picks the presumption used to answer an inquiry about a
// forgotten transaction.
func (c *Coordinator) presumeFor(m wire.Message) wire.Outcome {
	if c.cfg.FixedPresumption {
		return c.cfg.FixedOutcome
	}
	if c.cfg.Strategy == StrategyPrAny {
		proto := m.Proto
		if p, ok := c.pcp.Lookup(m.From); ok {
			proto = p
		}
		if o, ok := proto.Presumption(); ok {
			return o
		}
		return wire.Abort
	}
	o, _ := c.cfg.Native.Presumption()
	return o
}

func (c *Coordinator) respond(inq wire.Message, outcome wire.Outcome) {
	c.env.event(history.Event{Kind: history.EvRespond, Txn: inq.Txn, Outcome: outcome, Peer: inq.From})
	c.env.send(wire.Message{
		Kind: wire.MsgDecision, Txn: inq.Txn, From: c.env.ID, To: inq.From, Outcome: outcome,
	})
}

// Tick retries timeout-driven work: decisions are re-sent to expected
// acknowledgers that have not acknowledged (their copy, or its ack, may
// have been lost, or the participant may have been down). The site layer
// calls it periodically.
//
// Re-sends back off per participant under the TCP redial policy — a base
// delay doubling per consecutive re-send, capped, jittered — measured in
// Tick calls: the first re-send fires on the next Tick, then the gaps grow
// to the cap, so a long-dead participant costs O(log) decision copies per
// backoff window instead of one per tick. Suppressed re-sends are counted
// (metrics.ResendsSuppressed); an acknowledgment resets nothing because the
// participant then leaves the pending set entirely.
func (c *Coordinator) Tick() {
	tick := c.ticks.Add(1)
	var msgs []wire.Message
	suppressed := 0
	c.txns.each(func(tbl map[wire.TxnID]*ctxn) {
		for _, ct := range tbl {
			if ct.state != cDraining {
				continue
			}
			for _, id := range ct.order {
				p := ct.parts[id]
				if !p.sentDecision || !p.expectAck || p.acked {
					continue
				}
				if tick < p.resendDue {
					suppressed++
					continue
				}
				p.resends++
				p.resendDue = tick + c.resendDelay(p.resends)
				msgs = append(msgs, wire.Message{
					Kind: wire.MsgDecision, Txn: ct.txn, From: c.env.ID, To: id, Outcome: ct.outcome,
				})
			}
		}
	})
	if suppressed > 0 && c.env.Met != nil {
		c.env.Met.ResendSuppressed(c.env.ID, suppressed)
	}
	c.decider.Tick()
	sortMsgs(msgs)
	c.env.fanout(msgs)
}

// resendDelay returns the tick gap before the re-send after `resends`
// consecutive re-sends: base 1 doubling per re-send, capped at 16, drawn
// from [d/2, d] — the transport's redial backoff in tick units. Under a
// serial scheduler the jitter is bypassed so deterministic drivers replay
// identically.
func (c *Coordinator) resendDelay(resends int) uint64 {
	const capTicks = 16
	d := uint64(1)
	for i := 1; i < resends && d < capTicks; i++ {
		d *= 2
	}
	if d > capTicks {
		d = capTicks
	}
	if c.env.serial() {
		return d
	}
	c.jitterMu.Lock()
	j := uint64(c.jitter.Int63n(int64(d/2) + 1))
	c.jitterMu.Unlock()
	if v := d/2 + j; v > 0 {
		return v
	}
	return 1
}

// PTSize returns the number of protocol-table entries — the retention
// measure of Theorem 2.
func (c *Coordinator) PTSize() int { return c.txns.size() }

// Knows reports whether txn is still in the protocol table (the site layer
// routes inquiries between the coordinator and a co-located acceptor by it).
func (c *Coordinator) Knows(txn wire.TxnID) bool {
	sh := c.txns.lock(txn)
	_, ok := sh.m[txn]
	sh.mu.Unlock()
	return ok
}

// PTEntries returns the transactions currently in the protocol table, in
// sorted order.
func (c *Coordinator) PTEntries() []wire.TxnID {
	var out []wire.TxnID
	c.txns.each(func(tbl map[wire.TxnID]*ctxn) {
		for txn := range tbl {
			out = append(out, txn)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// PTDump snapshots the live protocol table for the /txns endpoint and the
// E17 retention probe: per-entry state, outcome, pending-acknowledgment
// counts and age. Under C2PC the draining entries whose pending count can
// never reach zero are Theorem 2 made directly visible.
func (c *Coordinator) PTDump() []obs.PTEntry {
	now := time.Now()
	var out []obs.PTEntry
	c.txns.each(func(tbl map[wire.TxnID]*ctxn) {
		for _, ct := range tbl {
			e := obs.PTEntry{
				Txn:   ct.txn,
				Site:  c.env.ID,
				Role:  "coordinator",
				Proto: ct.chosen.String(),
				State: "voting",
			}
			if ct.state == cDraining {
				e.State = "draining"
			}
			if ct.decided {
				e.Outcome = ct.outcome.String()
			}
			for _, p := range ct.parts {
				if p.expectAck {
					e.AcksExpected++
					if !p.acked {
						e.AcksPending++
					}
				}
			}
			if !ct.startedAt.IsZero() {
				e.Age = now.Sub(ct.startedAt)
			}
			out = append(out, e)
		}
	})
	return out
}

// CheckpointEntries snapshots the coordinator's protocol table for a
// RecCheckpoint record: one entry per live transaction with its phase and,
// when decided, its outcome. Entries are sorted by transaction so equal
// tables snapshot identically.
func (c *Coordinator) CheckpointEntries() []wal.CheckpointEntry {
	var out []wal.CheckpointEntry
	c.txns.each(func(tbl map[wire.TxnID]*ctxn) {
		for _, ct := range tbl {
			e := wal.CheckpointEntry{Txn: ct.txn, Role: wal.RoleCoord, Phase: wal.CkptVoting}
			if ct.state == cDraining {
				e.Phase = wal.CkptDraining
			}
			if ct.decided {
				e.Decided = true
				e.Outcome = ct.outcome
			}
			out = append(out, e)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Txn.String() < out[j].Txn.String() })
	return out
}

// Live reports whether the coordinator still needs txn's log records. Only
// transactions in the protocol table do; everything else is garbage by
// clause 2 of operational correctness.
func (c *Coordinator) Live(txn wire.TxnID) bool {
	sh := c.txns.lock(txn)
	_, ok := sh.m[txn]
	sh.mu.Unlock()
	return ok
}
