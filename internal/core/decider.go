package core

import (
	"errors"

	"prany/internal/wal"
	"prany/internal/wire"
)

// ErrDecidePending is returned by coordinator operations whose decision is
// being fixed by a replicated decider and has not completed yet: the outcome
// is not known, no decision was communicated, and the caller should wait for
// the decide fix-point (Commit does; a deterministic driver delivers the
// consensus messages itself and re-polls).
var ErrDecidePending = errors.New("core: replicated decision pending")

// DecideRequest carries everything a decider needs to fix one transaction's
// outcome: the tentative outcome computed from the votes, the per-participant
// vote values (one consensus instance each under Paxos Commit), and the
// logging discipline of the chosen variant.
type DecideRequest struct {
	Txn    wire.TxnID
	Chosen wire.Protocol
	// Outcome is the tentative outcome from the voting phase: commit iff
	// every vote is an explicit yes. A single decider fixes exactly this
	// value; a replicated one proposes it and fixes whatever the acceptor
	// quorum chooses (the same value, unless a takeover leader got there
	// first).
	Outcome wire.Outcome
	// Roster is the participant set with protocols, as logged in the
	// initiation record — replicated deciders ship it to acceptors so a
	// takeover leader can finish the decision phase.
	Roster []wal.ParticipantInfo
	// Votes is the per-participant instance values (yes and read-only votes
	// map to yes; no and missing votes to no). Set only for replicated
	// deciders; the conjunction of the instances is the outcome.
	Votes []wire.InstanceVote
	// LogsAbort reports whether the chosen variant forces an abort decision
	// record (PrN and CL do; PrA, PrC and PrAny presume or reconstruct).
	LogsAbort bool
}

// Decider is the decision fix-point of the coordinator: the step between
// "the votes are in" and "the outcome is fixed and durable". SingleDecider
// is the paper's coordinator — one forced decision record in the local log.
// A replicated decider (internal/consensus) makes the decision durable on a
// quorum of acceptor sites instead, so it survives coordinator crashes.
//
// The participant-facing protocol is untouched either way: presumptions,
// acknowledgment subsets and forgetting rules never depend on *how* the
// coordinator fixed its decision, only on the decision itself.
type Decider interface {
	// Replicated reports whether decisions are fixed off-site. A replicated
	// coordinator forces the initiation record for every chosen variant
	// (the record is what tells recovery to learn instead of presume) and
	// must tolerate Decide returning before the outcome is fixed.
	Replicated() bool

	// Decide fixes the outcome for req. When done is true the returned
	// outcome is fixed (and durable) and fixed is never called. When done
	// is false the decision is in flight: fixed will be invoked exactly
	// once with the chosen outcome, possibly on another goroutine (a
	// consensus message delivery). An error means the outcome could not be
	// driven durable; no decision was communicated.
	Decide(req DecideRequest, fixed func(wire.Outcome)) (outcome wire.Outcome, done bool, err error)

	// HandlePhase processes one inbound consensus message addressed to this
	// coordinator's decider (Phase1b or Phase2b replies from acceptors).
	HandlePhase(m wire.Message)

	// RecoverUndecided re-learns the outcome of a transaction whose
	// initiation record survived a crash with no decision record. A single
	// decider presumes abort (the paper's rule); a replicated one must ask
	// the acceptors — the decision may have been fixed and announced while
	// this replica was down. Semantics of done/fixed are as in Decide.
	RecoverUndecided(txn wire.TxnID, roster []wal.ParticipantInfo, fixed func(wire.Outcome)) (outcome wire.Outcome, done bool)

	// Finished tells the decider the coordinator has forgotten txn: every
	// expected acknowledgment arrived and the end record (if any) is
	// written. Replicated deciders release the acceptors' instance state;
	// outcome lets them do so even when the round itself is already gone
	// (a recovery redrive never registered one).
	Finished(txn wire.TxnID, outcome wire.Outcome)

	// Tick retries timeout-driven consensus work (re-sending unanswered
	// phase messages). The site layer drives it through Coordinator.Tick.
	Tick()

	// DebugState renders decider state for model-checker hashing, with the
	// Coordinator.DebugState determinism contract. Must return "" when the
	// decider holds no state (SingleDecider always does), so single-decider
	// state hashes are unchanged by the interface seam.
	DebugState() string
}

// SingleDecider is the paper's decision step: force the decision record in
// the coordinator's own log, then send. It reproduces the pre-interface
// force-then-send path bit for bit — same records, same costs, same error
// handling.
type SingleDecider struct {
	env Env
}

// NewSingleDecider returns the local-log decider for env.
func NewSingleDecider(env Env) *SingleDecider { return &SingleDecider{env: env} }

// Replicated implements Decider: decisions live in the local log only.
func (s *SingleDecider) Replicated() bool { return false }

// Decide implements Decider. Every variant forces the commit record before
// any commit decision leaves the site. Abort records are forced only when
// the variant logs them (PrN, CL); PrA, PrC and PrAny presume or reconstruct
// aborts.
func (s *SingleDecider) Decide(req DecideRequest, _ func(wire.Outcome)) (wire.Outcome, bool, error) {
	if req.Outcome == wire.Commit {
		if err := s.env.force(wal.Record{
			Kind: wal.KCommit, Role: wal.RoleCoord, Txn: req.Txn, Participants: req.Roster,
		}); err != nil {
			// The failed force may leave the commit record in the log
			// buffer, where a later successful force would stabilize it —
			// and recovery would then re-drive a commit this coordinator
			// never announced. A lazy abort record supersedes it (recovery
			// takes the last decision record).
			s.env.appendLazy(wal.Record{
				Kind: wal.KAbort, Role: wal.RoleCoord, Txn: req.Txn, Participants: req.Roster,
			})
			return wire.Abort, true, err
		}
	} else if req.LogsAbort {
		if err := s.env.force(wal.Record{
			Kind: wal.KAbort, Role: wal.RoleCoord, Txn: req.Txn, Participants: req.Roster,
		}); err != nil {
			return wire.Abort, true, err
		}
	} else {
		return req.Outcome, true, nil
	}
	if s.env.Met != nil {
		s.env.Met.Decision(s.env.ID, 1, 1)
	}
	return req.Outcome, true, nil
}

// HandlePhase implements Decider; a single decider receives no consensus
// traffic.
func (s *SingleDecider) HandlePhase(wire.Message) {}

// RecoverUndecided implements Decider: an initiation record without a
// decision record means the crash preceded the decision, and the transaction
// aborts (Section 4.2).
func (s *SingleDecider) RecoverUndecided(wire.TxnID, []wal.ParticipantInfo, func(wire.Outcome)) (wire.Outcome, bool) {
	return wire.Abort, true
}

// Finished implements Decider; nothing to release.
func (s *SingleDecider) Finished(wire.TxnID, wire.Outcome) {}

// Tick implements Decider; nothing to retry.
func (s *SingleDecider) Tick() {}

// DebugState implements Decider; a single decider holds no state, and the
// empty string keeps pre-interface state hashes unchanged.
func (s *SingleDecider) DebugState() string { return "" }
