package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"prany/internal/wal"
	"prany/internal/wire"
)

// TestDeadlineWheelFires pins the wheel's basic contract: an entry whose
// deadline passes has its expired channel closed, at or after the deadline.
func TestDeadlineWheelFires(t *testing.T) {
	w := newDeadlineWheel()
	defer w.stop()
	start := time.Now()
	e := w.add(start.Add(20 * time.Millisecond))
	select {
	case <-e.expired:
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("fired after %v, before the 20ms deadline", elapsed)
	}
	if n := w.pending(); n != 0 {
		t.Fatalf("%d entries pending after firing", n)
	}
}

// TestDeadlineWheelCancelDoesNotLeak is the satellite's leak regression: a
// commit path that adds and immediately cancels thousands of deadlines
// (votes always arrive before the timeout) must not accumulate stopped
// entries for a whole timeout window — cancel compacts the queue in place.
func TestDeadlineWheelCancelDoesNotLeak(t *testing.T) {
	w := newDeadlineWheel()
	defer w.stop()
	const n = 10000
	deadline := time.Now().Add(time.Hour) // far out: nothing expires by itself
	for i := 0; i < n; i++ {
		w.cancel(w.add(deadline))
	}
	if got := w.pending(); got != 0 {
		t.Fatalf("%d live entries after cancelling all %d", got, n)
	}
	w.mu.Lock()
	queued := len(w.entries) - w.head
	w.mu.Unlock()
	if queued > 64 {
		t.Fatalf("%d canceled entries still queued — cancel-side compaction broken", queued)
	}
}

// TestDeadlineWheelStopExpiresAll pins the crash path: stopping the wheel
// wakes every waiter as if its timeout fired, so no commit goroutine blocks
// on a dead coordinator.
func TestDeadlineWheelStopExpiresAll(t *testing.T) {
	w := newDeadlineWheel()
	at := time.Now().Add(time.Hour)
	entries := []*wheelEntry{w.add(at), w.add(at), w.add(at)}
	w.stop()
	for i, e := range entries {
		select {
		case <-e.expired:
		case <-time.After(5 * time.Second):
			t.Fatalf("entry %d not expired by stop", i)
		}
	}
	// Adding to a stopped wheel comes back already expired.
	select {
	case <-w.add(at).expired:
	default:
		t.Fatal("add on a stopped wheel returned a live entry")
	}
}

// TestDeadlineWheelConcurrent hammers the wheel from many goroutines with
// mixed expiring and canceled deadlines — the -race exercise for the one
// structure every Commit call now goes through. Every expiring entry must
// fire, and after the dust settles nothing may remain pending.
func TestDeadlineWheelConcurrent(t *testing.T) {
	w := newDeadlineWheel()
	defer w.stop()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e := w.add(time.Now().Add(time.Millisecond))
				if (g+i)%2 == 0 {
					w.cancel(e)
					continue
				}
				select {
				case <-e.expired:
				case <-time.After(5 * time.Second):
					t.Errorf("g%d entry %d never expired", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := w.pending(); n != 0 {
		t.Fatalf("%d entries pending after drain", n)
	}
}

// TestVoteTimeoutStillFiresThroughWheel drives the real timeout path end to
// end: a participant that never votes must still abort the transaction by
// vote timeout now that the commit path waits on the wheel instead of a
// per-transaction timer — and the fired deadline must not linger.
func TestVoteTimeoutStillFiresThroughWheel(t *testing.T) {
	r := newRig(t, CoordinatorConfig{VoteTimeout: 30 * time.Millisecond},
		partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrA})
	r.setDrop(func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "p2" })
	txn := r.nextTxn()
	r.exec(txn, "p1", "p2")
	out, err := r.coord.Commit(txn, []wire.SiteID{"p1", "p2"})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if out != wire.Abort {
		t.Fatalf("outcome %s, want abort by vote timeout", out)
	}
	if n := r.coord.wheel.pending(); n != 0 {
		t.Fatalf("%d wheel entries pending after timeout abort", n)
	}
	r.setDrop(nil)
	r.settle()
	r.checkClean()
}

// TestEpochSealBatchesDecisions commits a burst of concurrent transactions
// through the epoch sealer and asserts the tentpole's physical/logical
// split: every transaction still gets exactly one logical decision, but the
// decisions share forced KRecEpochDecision records — strictly fewer records
// than transactions, with the member entries accounting for every one.
func TestEpochSealBatchesDecisions(t *testing.T) {
	r := newRig(t, CoordinatorConfig{EpochCommit: true, EpochWindow: 20 * time.Millisecond},
		partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrC})
	const k = 6
	txns := make([]wire.TxnID, k)
	for i := range txns {
		txns[i] = r.nextTxn()
		r.exec(txns[i], "p1", "p2")
	}
	outs := make([]wire.Outcome, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range txns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = r.coord.Commit(txns[i], []wire.SiteID{"p1", "p2"})
		}(i)
	}
	wg.Wait()
	for i := range txns {
		if errs[i] != nil {
			t.Fatalf("Commit(%s): %v", txns[i], errs[i])
		}
		if outs[i] != wire.Commit {
			t.Fatalf("Commit(%s) = %s, want commit", txns[i], outs[i])
		}
	}

	epochRecs, members, perTxn := 0, 0, 0
	for _, rec := range r.logs["coord"].All() {
		switch rec.Kind {
		case wal.KRecEpochDecision:
			epochRecs++
			members += len(rec.Members)
		case wal.KCommit, wal.KAbort:
			if rec.Role == wal.RoleCoord {
				perTxn++
			}
		}
	}
	if perTxn != 0 {
		t.Fatalf("%d per-transaction decision records escaped the sealer", perTxn)
	}
	if members != k {
		t.Fatalf("epoch members %d, want %d", members, k)
	}
	if epochRecs == 0 || epochRecs >= k {
		t.Fatalf("%d epoch records for %d transactions — no batching", epochRecs, k)
	}
	m := r.met.Site("coord")
	if m.Decisions != uint64(k) || m.DecisionRecords != uint64(epochRecs) {
		t.Fatalf("metrics decisions=%d records=%d, want %d/%d", m.Decisions, m.DecisionRecords, k, epochRecs)
	}
	r.settle()
	r.checkClean()
}

// TestEpochForceFailureAbortsEveryMember is the partial-epoch failure
// clause: when the epoch record's force fails, EVERY commit member must be
// superseded by a lazy abort record and reported aborted to its caller —
// the record may survive in the buffer where a later barrier would
// stabilize it, so no member's commit may be presumed announced.
func TestEpochForceFailureAbortsEveryMember(t *testing.T) {
	// All-PrA: no initiation record, so the armed failure hits the epoch
	// record's force — the coordinator's first and only forced write.
	r := newRig(t, CoordinatorConfig{EpochCommit: true, EpochWindow: 20 * time.Millisecond},
		partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrA})
	const k = 4
	txns := make([]wire.TxnID, k)
	for i := range txns {
		txns[i] = r.nextTxn()
		r.exec(txns[i], "p1", "p2")
	}
	r.stores2["coord"].FailNextAppend = errors.New("disk failure")
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range txns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.coord.Commit(txns[i], []wire.SiteID{"p1", "p2"})
		}(i)
	}
	wg.Wait()
	for i := range txns {
		if errs[i] == nil {
			t.Fatalf("Commit(%s) succeeded despite epoch force failure", txns[i])
		}
	}
	if got := r.met.Site("coord").Messages[wire.MsgDecision]; got != 0 {
		t.Fatalf("%d decisions escaped after failed epoch force", got)
	}
	// Every member has a superseding abort in the log (stable or buffered):
	// recovery takes the last decision record per transaction, so even if
	// the failed epoch record later stabilizes, every member aborts.
	aborted := make(map[wire.TxnID]bool)
	for _, rec := range r.logs["coord"].All() {
		if rec.Kind == wal.KAbort && rec.Role == wal.RoleCoord {
			aborted[rec.Txn] = true
		}
	}
	for _, txn := range txns {
		if !aborted[txn] {
			t.Fatalf("no superseding abort record for member %s", txn)
		}
	}
	// The operator's remedy for a failing coordinator log: fail-stop and
	// recover. Every member must land on abort everywhere.
	r.crashCoord()
	r.recoverCoord()
	r.settle()
	for _, txn := range txns {
		for _, id := range []wire.SiteID{"p1", "p2"} {
			if _, ok := r.stores[id].Read("k-" + txn.String()); ok {
				t.Fatalf("member %s committed at %s after failed epoch force", txn, id)
			}
		}
	}
	r.checkClean()
}

// TestEpochRecordRecoveryRedrivesMembers crashes the coordinator after an
// epoch seals but before any participant learns the outcome: recovery must
// unfold the epoch record into its members and re-drive every decision —
// the Section 4.2 procedure treating the batched record as N logical
// decision records at one LSN.
func TestEpochRecordRecoveryRedrivesMembers(t *testing.T) {
	r := newRig(t, CoordinatorConfig{EpochCommit: true, EpochWindow: 20 * time.Millisecond},
		partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrC})
	r.setDrop(func(m wire.Message) bool { return m.Kind == wire.MsgDecision })
	const k = 3
	txns := make([]wire.TxnID, k)
	for i := range txns {
		txns[i] = r.nextTxn()
		r.exec(txns[i], "p1", "p2")
	}
	var wg sync.WaitGroup
	for i := range txns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The decision is durable and "sent" (dropped); acks never
			// come, so don't wait for them here — settle after recovery.
			r.coord.Commit(txns[i], []wire.SiteID{"p1", "p2"})
		}(i)
	}
	wg.Wait()
	found := 0
	for _, rec := range r.logs["coord"].Records() {
		if rec.Kind == wal.KRecEpochDecision {
			found += len(rec.Members)
		}
	}
	if found != k {
		t.Fatalf("stable epoch members %d, want %d", found, k)
	}
	r.crashCoord()
	r.setDrop(nil)
	r.recoverCoord()
	r.settle()
	for _, txn := range txns {
		for _, id := range []wire.SiteID{"p1", "p2"} {
			if _, ok := r.stores[id].Read("k-" + txn.String()); !ok {
				t.Fatalf("member %s not committed at %s after recovery from epoch record", txn, id)
			}
		}
	}
	r.checkClean()
}

// TestEpochRecoverySupersedingAbortWins pins the last-record-wins rule for
// unfolded epochs: a transaction whose epoch record says commit but which a
// later (higher-LSN) abort record supersedes must recover as aborted —
// exactly the state a partially failed epoch leaves behind when the failed
// record stabilizes after all. PrC members, so the abort must actually be
// re-driven (presumed commit cannot just presume it away).
func TestEpochRecoverySupersedingAbortWins(t *testing.T) {
	r := newRig(t, CoordinatorConfig{}, partSpec{"p1", wire.PrC}, partSpec{"p2", wire.PrC})
	txn := r.nextTxn()
	parts := []wal.ParticipantInfo{{ID: "p1", Proto: wire.PrC}, {ID: "p2", Proto: wire.PrC}}
	for _, rec := range []wal.Record{
		{Kind: wal.KRecEpochDecision, Role: wal.RoleCoord, Members: []wal.EpochMember{
			{Txn: txn, Outcome: wire.Commit, Participants: parts},
		}},
		{Kind: wal.KAbort, Role: wal.RoleCoord, Txn: txn, Participants: parts},
	} {
		if _, err := r.logs["coord"].AppendForce(rec); err != nil {
			t.Fatal(err)
		}
	}
	r.crashCoord()
	var mu sync.Mutex
	var redriven []wire.Outcome
	r.setDrop(func(m wire.Message) bool {
		if m.Kind == wire.MsgDecision && m.Txn == txn {
			mu.Lock()
			redriven = append(redriven, m.Outcome)
			mu.Unlock()
		}
		return false
	})
	r.recoverCoord()
	r.settle()
	if len(redriven) == 0 {
		t.Fatal("recovery re-drove no decision for the epoch member")
	}
	for _, out := range redriven {
		if out != wire.Abort {
			t.Fatalf("recovery re-drove %s, want the superseding abort", out)
		}
	}
}

// TestEpochSealerStopFailsPending pins the crash path the site's Crash()
// takes: stopping the sealer must fail every pending submission instead of
// leaving its goroutine blocked forever.
func TestEpochSealerStopFailsPending(t *testing.T) {
	r := newRig(t, CoordinatorConfig{EpochCommit: true, EpochWindow: time.Hour},
		partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrA})
	txn := r.nextTxn()
	r.exec(txn, "p1", "p2")
	done := make(chan error, 1)
	go func() {
		_, err := r.coord.Commit(txn, []wire.SiteID{"p1", "p2"})
		done <- err
	}()
	// Wait for the submission to reach the sealer, then stop it mid-window.
	for i := 0; i < 1000; i++ {
		r.coord.epoch.mu.Lock()
		n := len(r.coord.epoch.pending)
		r.coord.epoch.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.coord.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Commit succeeded on a stopped sealer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit blocked on a stopped sealer")
	}
	r.coord.epoch.mu.Lock()
	left := len(r.coord.epoch.pending)
	r.coord.epoch.mu.Unlock()
	if left != 0 {
		t.Fatalf("pending entries survived stop: %d", left)
	}
}
