package core

import (
	"sort"
	"sync"

	"prany/internal/wire"
)

// PCP is the participants' commit protocol table of Section 4: the
// coordinator's stable record of which two-phase-commit variant every site
// in the distributed environment runs. It is updated when a site joins or
// leaves. The in-memory view restricted to participants with active
// transactions — the paper's APP table — is what Lookup serves; since this
// implementation keeps the whole table resident, PCP and APP coincide and
// the type serves both roles.
type PCP struct {
	mu     sync.RWMutex
	protos map[wire.SiteID]wire.Protocol
}

// NewPCP returns an empty table.
func NewPCP() *PCP {
	return &PCP{protos: make(map[wire.SiteID]wire.Protocol)}
}

// Set registers (or updates) the protocol site runs. Coordinator-only
// strategies are not valid participant protocols; Set panics on one, since
// the table is populated from deployment configuration and such an entry is
// a programming error, not a runtime condition.
func (p *PCP) Set(site wire.SiteID, proto wire.Protocol) {
	if !proto.ParticipantProtocol() {
		panic("core: " + proto.String() + " is not a participant protocol")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.protos[site] = proto
}

// Remove deletes a site that left the environment.
func (p *PCP) Remove(site wire.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.protos, site)
}

// Lookup returns the protocol site runs.
func (p *PCP) Lookup(site wire.SiteID) (wire.Protocol, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	proto, ok := p.protos[site]
	return proto, ok
}

// Sites returns the registered sites in sorted order.
func (p *PCP) Sites() []wire.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]wire.SiteID, 0, len(p.protos))
	for s := range p.protos {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select implements the protocol selection rule of Section 4.1: a
// homogeneous participant set uses its native protocol; any heterogeneous
// set uses PrAny. (The paper's prose names the PrA-mixed cases explicitly;
// the PrN+PrC mix is routed through PrAny too, since those presumptions
// conflict by the same argument — see DESIGN.md §5.) An empty set selects
// PrA: with nobody to coordinate, presuming abort costs nothing.
func Select(protos []wire.Protocol) wire.Protocol {
	if len(protos) == 0 {
		return wire.PrA
	}
	first := protos[0]
	for _, p := range protos[1:] {
		if p != first {
			return wire.PrAny
		}
	}
	return first
}
