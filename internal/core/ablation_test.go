package core

import (
	"testing"
	"time"

	"prany/internal/wire"
)

// TestAblationFixedPresumption shows the dynamic per-inquirer presumption
// is what makes PrAny safe: the same engine with a *fixed* post-forget
// presumption re-creates the Theorem-1 violation on the schedule whose
// actual outcome contradicts the fixed answer.
func TestAblationFixedPresumption(t *testing.T) {
	// Fixed ABORT presumption, committed transaction, PrC victim: the
	// inquiry is answered abort though the outcome was commit.
	cfg := CoordinatorConfig{FixedPresumption: true, FixedOutcome: wire.Abort}
	r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "pc" }
	out, err := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if err != nil || out != wire.Commit {
		t.Fatalf("outcome %v, %v", out, err)
	}
	r.drop = nil
	if r.coord.PTSize() != 0 {
		t.Fatal("coordinator did not forget")
	}
	r.crashPart("pc")
	r.recoverPart("pc", wire.PrC)
	r.checkAtomicityViolated()

	// Fixed COMMIT presumption, aborted transaction, PrA victim: dual case.
	cfg2 := CoordinatorConfig{FixedPresumption: true, FixedOutcome: wire.Commit}
	r2 := newRig(t, cfg2, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn2 := r2.nextTxn()
	r2.exec(txn2, "pa", "pc")
	r2.drop = func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "pc" }
	out2, err := r2.coord.Commit(txn2, []wire.SiteID{"pa", "pc"})
	if err != nil || out2 != wire.Abort {
		t.Fatalf("outcome %v, %v", out2, err)
	}
	r2.drop = nil
	r2.crashPart("pa")
	r2.recoverPart("pa", wire.PrA)
	r2.checkAtomicityViolated()
}

// TestAblationDynamicPresumptionIsSafe is the control: the identical
// schedules with the dynamic presumption stay clean (already covered by
// TestPrAnySurvivesTheorem1Schedules; asserted here side by side with the
// ablation for the record).
func TestAblationDynamicPresumptionIsSafe(t *testing.T) {
	r := newRig(t, CoordinatorConfig{}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "pc" }
	if out, _ := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"}); out != wire.Commit {
		t.Fatal("expected commit")
	}
	r.drop = nil
	r.crashPart("pc")
	r.recoverPart("pc", wire.PrC)
	r.checkClean()
}

// TestTickIdleAbort covers the unilateral abort of stranded executing
// subtransactions: an exec with no subsequent prepare is abandoned after
// idleAbortTicks rounds, releasing its locks.
func TestTickIdleAbort(t *testing.T) {
	r := newRig(t, CoordinatorConfig{}, partSpec{"p1", wire.PrA})
	txn := r.nextTxn()
	r.exec(txn, "p1")
	if r.parts["p1"].Pending() != 1 {
		t.Fatal("exec state missing")
	}
	for i := 0; i < idleAbortTicks; i++ {
		r.parts["p1"].Tick()
	}
	if r.parts["p1"].Pending() != 0 {
		t.Fatal("idle executing txn not abandoned")
	}
	if r.stores["p1"].PendingCount() != 0 {
		t.Fatal("RM state not released")
	}
	// A prepare arriving after the unilateral abort is answered with a no
	// vote; the global transaction aborts.
	out, _ := r.coord.Commit(txn, []wire.SiteID{"p1"})
	if out != wire.Abort {
		t.Fatalf("outcome %v", out)
	}
	r.checkClean()
}

// TestTickDoesNotKillActiveExec verifies the idle counter resets... it does
// not reset (by design: ticks are spaced by the site's retry interval, far
// apart relative to execution), but a *prepared* transaction must never be
// abandoned no matter how many ticks pass.
func TestTickNeverAbandonsPrepared(t *testing.T) {
	r := newRig(t, CoordinatorConfig{}, partSpec{"p1", wire.PrN})
	txn := r.nextTxn()
	r.exec(txn, "p1")
	// Prepare p1 but drop its vote so it stays prepared with the
	// transaction unresolved; drop inquiries too.
	r.drop = func(m wire.Message) bool {
		return m.Kind == wire.MsgVote || m.Kind == wire.MsgInquiry || m.Kind == wire.MsgDecision
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.coord.Commit(txn, []wire.SiteID{"p1"})
	}()
	waitUntil(t, func() bool { return len(r.parts["p1"].InDoubt()) == 1 })
	for i := 0; i < 3*idleAbortTicks; i++ {
		r.parts["p1"].Tick()
	}
	if len(r.parts["p1"].InDoubt()) != 1 {
		t.Fatal("prepared transaction was abandoned by ticks")
	}
	<-done // the commit call aborted on vote timeout
	r.drop = nil
	r.settle()
}

// waitUntil polls cond with a short sleep up to a generous deadline.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never reached")
}
