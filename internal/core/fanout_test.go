package core

import (
	"sync/atomic"
	"testing"

	"prany/internal/metrics"
	"prany/internal/wire"
)

type serialSched bool

func (s serialSched) Serial() bool { return bool(s) }

func fanoutMsgs() []wire.Message {
	return []wire.Message{
		{Kind: wire.MsgDecision, From: "c", To: "a"},
		{Kind: wire.MsgPrepare, From: "c", To: "a"},
		{Kind: wire.MsgDecision, From: "c", To: "b"},
	}
}

// TestFanoutUsesSendBatch: with a batch hook installed, a multi-message
// fanout goes down in one call, in order, with the logical message counts
// recorded per message exactly as the sequential path records them.
func TestFanoutUsesSendBatch(t *testing.T) {
	met := metrics.NewRegistry()
	var batches [][]wire.Message
	var singles int
	e := Env{
		ID:        "c",
		Met:       met,
		Send:      func(wire.Message) { singles++ },
		SendBatch: func(msgs []wire.Message) { batches = append(batches, msgs) },
	}
	e.fanout(fanoutMsgs())
	if singles != 0 || len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("singles=%d batches=%v, want one batch of 3", singles, batches)
	}
	c := met.Site("c")
	if c.Messages[wire.MsgDecision] != 2 || c.Messages[wire.MsgPrepare] != 1 {
		t.Fatalf("logical message counts wrong under batching: %v", c.Messages)
	}
}

// TestFanoutSerialSchedulerBypassesBatch: the model checker's serial mode
// must see one deterministic send per message, never the batch hook.
func TestFanoutSerialSchedulerBypassesBatch(t *testing.T) {
	var singles int
	e := Env{
		ID:        "c",
		Sched:     serialSched(true),
		Send:      func(wire.Message) { singles++ },
		SendBatch: func([]wire.Message) { t.Fatal("batch hook used under serial scheduler") },
	}
	e.fanout(fanoutMsgs())
	if singles != 3 {
		t.Fatalf("singles = %d, want 3", singles)
	}
}

// TestFanoutDeadSiteSendsNothing: a fail-stop site must not emit a batch
// from a goroutine still unwinding after the crash.
func TestFanoutDeadSiteSendsNothing(t *testing.T) {
	dead := &atomic.Bool{}
	dead.Store(true)
	e := Env{
		ID:        "c",
		Dead:      dead,
		Send:      func(wire.Message) { t.Fatal("send from dead site") },
		SendBatch: func([]wire.Message) { t.Fatal("batch from dead site") },
	}
	e.fanout(fanoutMsgs())
}
