package core

import (
	"testing"

	"prany/internal/history"
	"prany/internal/wire"
)

// These tests execute the adversarial schedules from the proofs of Theorems
// 1-3. Each Theorem-1 part is one schedule: mixed PrA/PrC participants, a
// decision one participant never safely received, a coordinator that
// forgets per its native presumption, and the recovering participant's
// inquiry answered wrongly. The same schedules run under StrategyPrAny must
// stay clean.

func TestTheorem1PartI_U2PCNativePrN(t *testing.T) {
	// Coordinator PrN (native), participants PrA + PrC, commit decided.
	// The PrC participant fails before receiving the commit; the PrA
	// participant acks; the coordinator forgets; the PrC inquiry is
	// answered with PrN's hidden abort presumption. Atomicity violated.
	cfg := CoordinatorConfig{Strategy: StrategyU2PC, Native: wire.PrN}
	r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool {
		return m.Kind == wire.MsgDecision && m.To == "pc"
	}
	out, err := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if err != nil || out != wire.Commit {
		t.Fatalf("outcome %v, %v", out, err)
	}
	r.drop = nil
	// The coordinator forgot after the PrA ack (U2PC knows PrC never acks
	// commits).
	if r.coord.PTSize() != 0 {
		t.Fatal("U2PC coordinator did not forget")
	}
	// The PrC participant crashes (its lazy state is volatile anyway) and
	// recovers in doubt: its forced prepared record drives an inquiry.
	r.crashPart("pc")
	r.recoverPart("pc", wire.PrC)

	// The inquiry was answered abort (PrN presumption) though the decision
	// was commit: atomicity is violated, and the PrC site's data diverges.
	r.checkAtomicityViolated()
	if _, ok := r.stores["pc"].Read("k-" + txn.String()); ok {
		t.Fatal("victim applied the commit; expected the wrong abort answer to undo it")
	}
	if _, ok := r.stores["pa"].Read("k-" + txn.String()); !ok {
		t.Fatal("the PrA participant should have committed")
	}
}

func TestTheorem1PartII_U2PCNativePrA(t *testing.T) {
	// Same schedule with a PrA-native coordinator: the presumption is again
	// abort, the violation identical.
	cfg := CoordinatorConfig{Strategy: StrategyU2PC, Native: wire.PrA}
	r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "pc" }
	out, err := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if err != nil || out != wire.Commit {
		t.Fatalf("outcome %v, %v", out, err)
	}
	r.drop = nil
	if r.coord.PTSize() != 0 {
		t.Fatal("U2PC coordinator did not forget")
	}
	r.crashPart("pc")
	r.recoverPart("pc", wire.PrC)
	r.checkAtomicityViolated()
}

func TestTheorem1PartIII_U2PCNativePrC(t *testing.T) {
	// The motivating example of Section 2: PrC-native coordinator decides
	// abort; the PrA participant fails after receiving the outcome but
	// before making it stable; the coordinator forgot after the PrC ack;
	// the recovered PrA participant's inquiry is answered commit by the
	// PrC presumption.
	cfg := CoordinatorConfig{Strategy: StrategyU2PC, Native: wire.PrC}
	r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	// Force an abort decision by losing pa's vote... no — pa must be
	// *prepared* (it voted yes). Lose pc's vote instead so the timeout
	// aborts while both are prepared; pc (silent) is still sent the abort
	// and acks it.
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "pc" }
	out, err := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if err != nil || out != wire.Abort {
		t.Fatalf("outcome %v, %v", out, err)
	}
	r.drop = nil

	// pa received the abort and enforced it, but its abort record is
	// non-forced (PrA does not ack aborts): crash it before the record is
	// ever forced — the prepared record alone survives.
	if r.coord.PTSize() != 0 {
		t.Fatal("U2PC-PrC coordinator did not forget after the PrC ack")
	}
	r.crashPart("pa")
	r.recoverPart("pa", wire.PrA)

	// The recovered pa inquired; the coordinator, remembering nothing,
	// answered commit by the PrC presumption. Violation.
	r.checkAtomicityViolated()
	if _, ok := r.stores["pa"].Read("k-" + txn.String()); !ok {
		t.Fatal("victim should have wrongly committed after the bad answer")
	}
}

func TestPrAnySurvivesTheorem1Schedules(t *testing.T) {
	// Schedule of Parts I/II: commit, decision lost to the PrC site.
	r := newRig(t, CoordinatorConfig{}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "pc" }
	out, err := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if err != nil || out != wire.Commit {
		t.Fatalf("outcome %v, %v", out, err)
	}
	r.drop = nil
	if r.coord.PTSize() != 0 {
		t.Fatal("PrAny must still forget: PrC's ack is not awaited")
	}
	r.crashPart("pc")
	r.recoverPart("pc", wire.PrC)
	// The inquiry is answered with the *inquirer's* presumption: commit.
	if _, ok := r.stores["pc"].Read("k-" + txn.String()); !ok {
		t.Fatal("PrC site did not converge to commit")
	}
	r.checkClean()

	// Schedule of Part III: abort with the PrA site losing its record.
	r2 := newRig(t, CoordinatorConfig{}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn2 := r2.nextTxn()
	r2.exec(txn2, "pa", "pc")
	r2.drop = func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "pc" }
	out2, err := r2.coord.Commit(txn2, []wire.SiteID{"pa", "pc"})
	if err != nil || out2 != wire.Abort {
		t.Fatalf("outcome %v, %v", out2, err)
	}
	r2.drop = nil
	if r2.coord.PTSize() != 0 {
		t.Fatal("PrAny abort must forget after PrN+PrC acks")
	}
	r2.crashPart("pa")
	r2.recoverPart("pa", wire.PrA)
	// Inquiry answered with PrA's own presumption: abort. Consistent.
	if _, ok := r2.stores["pa"].Read("k-" + txn2.String()); ok {
		t.Fatal("PrA site did not converge to abort")
	}
	r2.checkClean()
}

func TestTheorem2C2PCRetainsCommitsForever(t *testing.T) {
	// C2PC never forgets until *everyone* acks; PrC participants never ack
	// commits, so committed transactions stay in the protocol table no
	// matter how many ticks pass.
	for _, native := range []wire.Protocol{wire.PrN, wire.PrA, wire.PrC} {
		cfg := CoordinatorConfig{Strategy: StrategyC2PC, Native: native}
		r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
		const txns = 5
		for i := 0; i < txns; i++ {
			if out := r.run("pa", "pc"); out != wire.Commit {
				t.Fatalf("native %v: outcome %v", native, out)
			}
		}
		r.settle()
		if got := r.coord.PTSize(); got != txns {
			t.Errorf("native %v: PT size %d, want %d retained forever", native, got, txns)
		}
		// Functionally correct all along: no atomicity violations.
		if v := history.CheckAtomicity(r.hist.Events()); len(v) != 0 {
			t.Errorf("native %v: C2PC violated atomicity: %v", native, v)
		}
		// But operational correctness fails: retention is non-empty.
		if got := len(history.Retention(r.hist.Events())); got != txns {
			t.Errorf("native %v: retention reports %d, want %d", native, got, txns)
		}
	}
}

func TestTheorem2C2PCRetainsAbortsForever(t *testing.T) {
	// The dual case: PrA participants never ack aborts.
	cfg := CoordinatorConfig{Strategy: StrategyC2PC, Native: wire.PrC}
	r := newRig(t, cfg, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "pc" }
	out, _ := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"})
	if out != wire.Abort {
		t.Fatalf("outcome %v", out)
	}
	r.drop = nil
	r.settle()
	if r.coord.PTSize() != 1 {
		t.Fatalf("PT size %d, want 1 (abort retained: PrA never acks)", r.coord.PTSize())
	}
}

func TestTheorem3PrAnyDrainsEverything(t *testing.T) {
	// The contrast to Theorem 2: under PrAny the same mixed workload
	// leaves nothing behind — protocol table empty, histories clean,
	// participants forgotten — which is Theorem 3's operational
	// correctness in action.
	r := newRig(t, CoordinatorConfig{},
		partSpec{"pn", wire.PrN}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	for i := 0; i < 10; i++ {
		if out := r.run("pn", "pa", "pc"); out != wire.Commit {
			t.Fatalf("outcome %v", out)
		}
	}
	// A few aborts too (lost votes).
	for i := 0; i < 5; i++ {
		txn := r.nextTxn()
		r.exec(txn, "pn", "pa", "pc")
		r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgVote && m.From == "pn" }
		if out, _ := r.coord.Commit(txn, []wire.SiteID{"pn", "pa", "pc"}); out != wire.Abort {
			t.Fatalf("outcome %v", out)
		}
		r.drop = nil
		r.settle()
	}
	r.settle()
	if r.coord.PTSize() != 0 {
		t.Fatalf("PT size %d, want 0", r.coord.PTSize())
	}
	for id, p := range r.parts {
		if p.Pending() != 0 {
			t.Errorf("participant %s still holds %d transactions", id, p.Pending())
		}
	}
	r.checkClean()
}

func TestSafeStateDefinition(t *testing.T) {
	// Definition 2 executable check: after PrAny forgets a committed
	// mixed transaction, responses to any inquirer must equal commit.
	r := newRig(t, CoordinatorConfig{}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "pc" }
	if out, _ := r.coord.Commit(txn, []wire.SiteID{"pa", "pc"}); out != wire.Commit {
		t.Fatal("expected commit")
	}
	r.drop = nil
	// Inquiries from both protocols after forgetting.
	r.route(wire.Message{Kind: wire.MsgInquiry, Txn: txn, From: "pc", To: "coord", Proto: wire.PrC})
	if v := history.CheckSafeState(r.hist.Events()); len(v) != 0 {
		t.Fatalf("safe state violated: %v", v)
	}
	// A PrA participant cannot inquire here (it acked), which is exactly
	// why the safe state holds: only the commit presumption is reachable.
}

func TestU2PCHomogeneousIsSafe(t *testing.T) {
	// U2PC's flaw needs conflicting presumptions; with all-PrA
	// participants and a PrA-native coordinator the same schedules stay
	// clean. This pins the theorem's precondition.
	cfg := CoordinatorConfig{Strategy: StrategyU2PC, Native: wire.PrA}
	r := newRig(t, cfg, partSpec{"p1", wire.PrA}, partSpec{"p2", wire.PrA})
	txn := r.nextTxn()
	r.exec(txn, "p1", "p2")
	r.drop = func(m wire.Message) bool { return m.Kind == wire.MsgDecision && m.To == "p2" }
	out, _ := r.coord.Commit(txn, []wire.SiteID{"p1", "p2"})
	r.drop = nil
	if out != wire.Commit {
		t.Fatalf("outcome %v", out)
	}
	// p2 lost the commit, but p2's ack is expected, so the coordinator has
	// NOT forgotten; recovery resolves through the protocol table.
	r.crashPart("p2")
	r.recoverPart("p2", wire.PrA)
	r.settle()
	r.checkClean()
}
