package core

import (
	"strconv"
	"sync"
	"time"

	"prany/internal/metrics"
	"prany/internal/obs"
	"prany/internal/wal"
	"prany/internal/wire"
)

// epochSealer batches concurrent commit decisions into epochs: every
// transaction whose votes complete while one epoch's forced write is in
// flight joins the next epoch, and the whole epoch becomes durable with ONE
// forced KRecEpochDecision record carrying every member's decision, then
// fans out with ONE cross-transaction message batch per destination.
//
// The logical protocol is untouched — each member still has exactly one
// decision record (recovery, checkpointing and the Definition-1 judges
// unfold the epoch record per member), the same decision recipients, the
// same acknowledgment subsets — only the physical record and scheduling
// costs are divided by the epoch population. This is the E13/E16
// logical-vs-physical split applied to protocol decisions rather than
// syscalls.
//
// Sealing is load-proportional exactly like the group-commit flusher: with
// window zero the sealer seals whatever is pending the moment it is free
// (an idle coordinator seals epochs of one with no added latency; under
// load, decisions arriving while a seal's force is in flight pile into the
// next epoch). A positive window makes the sealer linger up to that long
// before sealing — trading latency for larger epochs — but the linger ends
// early once epochSealSize decisions are pending, so a formed convoy seals
// immediately instead of waiting out the window.
type epochSealer struct {
	c      *Coordinator
	window time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*epochEntry
	stopped bool
	started bool
}

// epochEntry is one decision waiting for its epoch to seal. done is
// buffered so the sealer never blocks handing back a result.
type epochEntry struct {
	ct      *ctxn
	outcome wire.Outcome
	done    chan epochResult
}

type epochResult struct {
	outcome wire.Outcome
	err     error
}

// epochEntries recycles entries (and their channels): each entry gets
// exactly one done send — from seal, a failed seal, or stop — and its
// submitter does exactly one receive, after which nothing references it.
var epochEntries = sync.Pool{New: func() any {
	return &epochEntry{done: make(chan epochResult, 1)}
}}

// epochSealSize ends a positive window's linger early: once this many
// decisions are pending, waiting longer only adds latency — the epoch is
// already big enough to amortize its one forced record and fan-out pass.
// Under load the clients a seal wakes resubmit together (convoy arrival),
// so the trigger usually fires long before the window expires; the window
// is the bound for trickle arrival, not the common-case wait.
const epochSealSize = 32

func newEpochSealer(c *Coordinator, window time.Duration) *epochSealer {
	s := &epochSealer{c: c, window: window}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// submit hands one fixed-tentative decision to the sealer and blocks until
// its epoch is durable and fanned out (or failed). The caller's transaction
// must already be claimed (state cDeciding) so duplicate resolves wait
// instead of re-deciding.
func (s *epochSealer) submit(ct *ctxn, outcome wire.Outcome) (wire.Outcome, error) {
	e := epochEntries.Get().(*epochEntry)
	e.ct, e.outcome = ct, outcome
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		e.ct = nil
		epochEntries.Put(e)
		return wire.Abort, ErrSiteDown
	}
	if !s.started {
		s.started = true
		go s.loop()
	}
	s.pending = append(s.pending, e)
	s.cond.Signal()
	s.mu.Unlock()
	r := <-e.done
	e.ct = nil
	epochEntries.Put(e)
	return r.outcome, r.err
}

// loop is the sealer goroutine: wait for pending decisions, optionally
// linger the configured window so concurrent decisions can join, then seal
// the batch. While seal's force is in flight new submissions accumulate for
// the next epoch — the piggyback that makes window zero load-proportional.
func (s *epochSealer) loop() {
	s.mu.Lock()
	for {
		for !s.stopped && len(s.pending) == 0 {
			s.cond.Wait()
		}
		if s.stopped {
			s.failPendingLocked(ErrSiteDown)
			s.mu.Unlock()
			return
		}
		if s.window > 0 && len(s.pending) < epochSealSize {
			expired := false
			t := time.AfterFunc(s.window, func() {
				s.mu.Lock()
				expired = true
				s.mu.Unlock()
				s.cond.Signal()
			})
			for !s.stopped && !expired && len(s.pending) < epochSealSize {
				s.cond.Wait()
			}
			t.Stop()
			if s.stopped {
				s.failPendingLocked(ErrSiteDown)
				s.mu.Unlock()
				return
			}
		}
		batch := s.pending
		s.pending = nil
		s.mu.Unlock()
		s.seal(batch)
		s.mu.Lock()
	}
}

// stop fails every pending decision with ErrSiteDown and terminates the
// sealer goroutine. A stopped sealer rejects further submissions; the site
// builds a fresh coordinator (and sealer) on recovery.
func (s *epochSealer) stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		s.failPendingLocked(ErrSiteDown)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *epochSealer) failPendingLocked(err error) {
	for _, e := range s.pending {
		e.done <- epochResult{wire.Abort, err}
	}
	s.pending = nil
}

// seal makes one epoch durable and performs its decision phase. On a force
// failure the epoch record may survive in the log buffer where a later
// barrier would stabilize it — so EVERY commit member gets a lazy
// superseding abort record (recovery takes the last decision record per
// transaction), not just the first: a partial-epoch failure must not leak
// any member's unannounced commit. Abort members need no superseding record;
// re-driving an abort is always safe.
func (s *epochSealer) seal(batch []*epochEntry) {
	c := s.c
	start := c.env.now()
	members := make([]wal.EpochMember, len(batch))
	for i, e := range batch {
		members[i] = wal.EpochMember{Txn: e.ct.txn, Outcome: e.outcome, Participants: c.infoList(e.ct)}
	}
	if err := c.env.force(wal.Record{
		Kind: wal.KRecEpochDecision, Role: wal.RoleCoord, Members: members,
	}); err != nil {
		for _, e := range batch {
			if e.outcome == wire.Commit {
				c.env.appendLazy(wal.Record{
					Kind: wal.KAbort, Role: wal.RoleCoord, Txn: e.ct.txn,
					Participants: c.infoList(e.ct),
				})
			}
			e.done <- epochResult{wire.Abort, err}
		}
		return
	}
	if c.env.Met != nil {
		c.env.Met.Decision(c.env.ID, len(batch), 1)
	}

	// One finalize pass per member collects the decision messages; the
	// whole epoch then fans out in one sorted batch, so same-destination
	// decisions across member transactions share physical frames instead of
	// coalescing only by luck.
	msgs := make([]wire.Message, 0, 4*len(batch))
	finished := make([]*epochEntry, 0, len(batch))
	for _, e := range batch {
		m, fin := c.finalizeCollect(e.ct, e.outcome)
		msgs = append(msgs, m...)
		if fin {
			finished = append(finished, e)
		}
	}
	sortMsgs(msgs)
	c.env.fanout(msgs)
	for _, e := range finished {
		c.decider.Finished(e.ct.txn, e.outcome)
	}
	c.env.traceSpan(obs.Event{Kind: obs.EvEpochSeal, Note: strconv.Itoa(len(batch))}, start)
	c.env.observe(metrics.SpanEpochSeal, start)
	for _, e := range batch {
		e.done <- epochResult{e.outcome, nil}
	}
}

// deadlineWheel replaces the per-transaction time.NewTimer allocations of
// the commit path with one goroutine and one reusable timer. Every deadline
// it accepts uses the same duration (the coordinator's vote timeout), so
// arrival order is deadline order and a FIFO slice suffices — no heap, no
// runtime timer churn at thousands of transactions per second.
type deadlineWheel struct {
	mu       sync.Mutex
	entries  []*wheelEntry
	head     int
	canceled int
	wake     chan struct{}
	stopped  bool
	started  bool
}

// wheelEntry is one pending deadline. expired is closed when the deadline
// fires (or the wheel stops); done marks an entry fired or canceled.
type wheelEntry struct {
	at      time.Time
	expired chan struct{}
	done    bool
}

func newDeadlineWheel() *deadlineWheel {
	return &deadlineWheel{wake: make(chan struct{}, 1)}
}

// add registers a deadline at `at`, which must be >= every previously added
// deadline (the coordinator always uses now+VoteTimeout, so this holds). On
// a stopped wheel the entry comes back already expired — the caller's
// subsequent operations fail on the dead site.
func (w *deadlineWheel) add(at time.Time) *wheelEntry {
	e := &wheelEntry{at: at, expired: make(chan struct{})}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		close(e.expired)
		return e
	}
	wasIdle := w.head == len(w.entries)
	w.entries = append(w.entries, e)
	if !w.started {
		w.started = true
		go w.loop()
	}
	w.mu.Unlock()
	if wasIdle {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return e
}

// cancel withdraws a deadline whose waiter no longer needs it (the votes
// arrived first). Canceled entries are dropped as the wheel reaches them;
// when they pile up faster than deadlines expire, cancel compacts the queue
// in place so stopped timers don't accumulate for a whole timeout window.
func (w *deadlineWheel) cancel(e *wheelEntry) {
	w.mu.Lock()
	if !e.done {
		e.done = true
		w.canceled++
		if w.canceled > 32 && w.canceled > (len(w.entries)-w.head)/2 {
			kept := w.entries[:0]
			for _, x := range w.entries[w.head:] {
				if !x.done {
					kept = append(kept, x)
				}
			}
			for i := len(kept); i < len(w.entries); i++ {
				w.entries[i] = nil
			}
			w.entries = kept
			w.head = 0
			w.canceled = 0
		}
	}
	w.mu.Unlock()
}

// stop expires every pending entry immediately and terminates the wheel
// goroutine. Waiters wake as if their timeout fired; their follow-up work
// fails on the dead site.
func (w *deadlineWheel) stop() {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		for _, e := range w.entries[w.head:] {
			if !e.done {
				e.done = true
				close(e.expired)
			}
		}
		w.entries = nil
		w.head = 0
		w.canceled = 0
	}
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// pending reports the live (un-fired, un-canceled) entry count; leak tests
// assert it drains to zero.
func (w *deadlineWheel) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, e := range w.entries[w.head:] {
		if !e.done {
			n++
		}
	}
	return n
}

// loop services the queue with a single reusable timer: sleep until the
// head deadline, fire it, advance. Canceled heads are skipped without
// sleeping; because deadlines are monotone, a canceled head never delays a
// later entry past its own deadline.
func (w *deadlineWheel) loop() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		w.mu.Lock()
		for w.head < len(w.entries) && w.entries[w.head].done {
			w.entries[w.head] = nil
			w.head++
		}
		if w.head == len(w.entries) {
			w.entries = w.entries[:0]
			w.head = 0
			w.canceled = 0
			stopped := w.stopped
			w.mu.Unlock()
			if stopped {
				return
			}
			<-w.wake
			continue
		}
		e := w.entries[w.head]
		w.mu.Unlock()
		if d := time.Until(e.at); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-w.wake:
				// New head state (a stop, or entries after an idle period);
				// re-evaluate from the top.
				if !timer.Stop() {
					<-timer.C
				}
				continue
			}
		}
		w.mu.Lock()
		if !e.done {
			e.done = true
			close(e.expired)
		}
		if w.head < len(w.entries) && w.entries[w.head] == e {
			w.entries[w.head] = nil
			w.head++
		}
		w.mu.Unlock()
	}
}
