package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"prany/internal/history"
	"prany/internal/wal"
	"prany/internal/wire"
)

// TestSingleDeciderContract pins the SingleDecider half of the Decider
// seam: synchronous fix, forced commit record, the failed-force abort
// supersession, presume-abort recovery, and the empty DebugState that keeps
// pre-interface state hashes unchanged.
func TestSingleDeciderContract(t *testing.T) {
	store := wal.NewMemStore()
	log, err := wal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	var sent []wire.Message
	env := Env{
		ID:   "coord",
		Log:  log,
		Send: func(m wire.Message) { sent = append(sent, m) },
		Dead: &atomic.Bool{},
	}
	d := NewSingleDecider(env)
	if d.Replicated() {
		t.Fatal("SingleDecider must not report replicated")
	}
	txn := wire.TxnID{Coord: "coord", Seq: 1}
	out, done, err := d.Decide(DecideRequest{
		Txn: txn, Chosen: wire.PrA, Outcome: wire.Commit,
	}, nil)
	if err != nil || !done || out != wire.Commit {
		t.Fatalf("commit decide: out=%s done=%v err=%v", out, done, err)
	}
	recs := log.Records()
	if len(recs) != 1 || recs[0].Kind != wal.KCommit || recs[0].Role != wal.RoleCoord {
		t.Fatalf("want one forced coordinator commit record, got %v", recs)
	}

	// A presuming variant's abort fixes without any record; a logging
	// variant's abort forces one.
	out, done, err = d.Decide(DecideRequest{
		Txn: wire.TxnID{Coord: "coord", Seq: 2}, Chosen: wire.PrA, Outcome: wire.Abort,
	}, nil)
	if err != nil || !done || out != wire.Abort || len(log.Records()) != 1 {
		t.Fatalf("presumed abort decide: out=%s done=%v err=%v recs=%d", out, done, err, len(log.Records()))
	}
	out, done, err = d.Decide(DecideRequest{
		Txn: wire.TxnID{Coord: "coord", Seq: 3}, Chosen: wire.PrN, Outcome: wire.Abort, LogsAbort: true,
	}, nil)
	if err != nil || !done || out != wire.Abort {
		t.Fatalf("logged abort decide: out=%s done=%v err=%v", out, done, err)
	}
	if recs := log.Records(); len(recs) != 2 || recs[1].Kind != wal.KAbort {
		t.Fatalf("want a forced abort record for a logging variant, got %v", recs)
	}

	// The no-op half of the interface.
	d.HandlePhase(wire.Message{Kind: wire.MsgPhase2b})
	d.Finished(txn, wire.Commit)
	d.Tick()
	if s := d.DebugState(); s != "" {
		t.Fatalf("SingleDecider DebugState must be empty, got %q", s)
	}
	if out, done := d.RecoverUndecided(txn, nil, nil); out != wire.Abort || !done {
		t.Fatalf("recovery must presume abort synchronously, got %s done=%v", out, done)
	}

	// A failed force turns a commit decision into a superseding lazy abort
	// with the error surfaced; closing the log makes every write fail.
	log.Close()
	out, done, err = d.Decide(DecideRequest{
		Txn: wire.TxnID{Coord: "coord", Seq: 4}, Chosen: wire.PrA, Outcome: wire.Commit,
	}, nil)
	if err == nil || !done || out != wire.Abort {
		t.Fatalf("failed force must abort with the error surfaced: out=%s done=%v err=%v", out, done, err)
	}
	if len(sent) != 0 {
		t.Fatalf("the decider itself must never send, got %v", sent)
	}
}

// TestEnvDeciderHooks covers the exported Env wrappers internal/consensus
// builds on: record forcing and lazy appends, accounted sends, history
// events, deterministic fan-out ordering, and the serial-scheduler probe.
func TestEnvDeciderHooks(t *testing.T) {
	log, err := wal.Open(wal.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	hist := history.NewRecorder()
	var sent []wire.Message
	env := Env{
		ID:   "a1",
		Log:  log,
		Send: func(m wire.Message) { sent = append(sent, m) },
		Hist: hist,
		Dead: &atomic.Bool{},
	}
	txn := wire.TxnID{Coord: "coord", Seq: 1}
	if err := env.ForceRecord(wal.Record{Kind: wal.KPaxosAccept, Role: wal.RoleAcceptor, Txn: txn}); err != nil {
		t.Fatal(err)
	}
	if err := env.AppendRecord(wal.Record{Kind: wal.KEnd, Role: wal.RoleAcceptor, Txn: txn}); err != nil {
		t.Fatal(err)
	}
	// The forced record is stable; the lazy append sits in the buffer.
	if stable, all := len(log.Records()), len(log.All()); stable != 1 || all != 2 {
		t.Fatalf("want 1 stable + 1 buffered record, got stable=%d all=%d", stable, all)
	}
	env.SendMsg(wire.Message{Kind: wire.MsgPhase2b, Txn: txn, From: "a1", To: "coord"})
	env.FanoutMsgs([]wire.Message{
		{Kind: wire.MsgPaxosEnd, Txn: txn, From: "a1", To: "a3"},
		{Kind: wire.MsgPaxosEnd, Txn: txn, From: "a1", To: "a2"},
	})
	if len(sent) != 3 || sent[1].To != "a2" || sent[2].To != "a3" {
		t.Fatalf("fan-out must sort by destination: %v", sent)
	}
	env.RecordEvent(history.Event{Kind: history.EvDecide, Txn: txn, Outcome: wire.Commit})
	found := false
	for _, ev := range hist.Events() {
		if ev.Kind == history.EvDecide && ev.Site == "a1" {
			found = true
		}
	}
	if !found {
		t.Fatal("RecordEvent must stamp the site and reach the recorder")
	}
	if env.SerialSched() {
		t.Fatal("no scheduler attached, SerialSched must be false")
	}

	// Fail-stop discipline: a dead site neither logs nor sends nor records.
	env.Dead.Store(true)
	if err := env.ForceRecord(wal.Record{Kind: wal.KPaxosAccept, Role: wal.RoleAcceptor, Txn: txn}); err == nil {
		t.Fatal("a dead site must refuse to force")
	}
	env.SendMsg(wire.Message{Kind: wire.MsgPhase2b, Txn: txn, From: "a1", To: "coord"})
	if len(sent) != 3 {
		t.Fatalf("a dead site must not send, got %v", sent)
	}
}

// TestBeginResolveVoteStatus drives the voting phase through the
// deterministic-driver API (Begin + VoteStatus + Resolve) instead of Commit,
// and reads the introspection the model checker depends on: Knows,
// PTEntries, CheckpointEntries and the decider accessor.
func TestBeginResolveVoteStatus(t *testing.T) {
	r := newRig(t, CoordinatorConfig{}, partSpec{"pa", wire.PrA}, partSpec{"pc", wire.PrC})
	if _, ok := r.coord.Decider().(*SingleDecider); !ok {
		t.Fatalf("default decider must be SingleDecider, got %T", r.coord.Decider())
	}
	txn := r.nextTxn()
	r.exec(txn, "pa", "pc")
	if err := r.coord.Begin(txn, []wire.SiteID{"pa", "pc"}); err != nil {
		t.Fatal(err)
	}
	// The rig routes synchronously: both yes votes are already in.
	open, done := r.coord.VoteStatus(txn)
	if !open || !done {
		t.Fatalf("after synchronous votes want open=true done=true, got open=%v done=%v", open, done)
	}
	if !r.coord.Knows(txn) {
		t.Fatal("coordinator must know an in-flight transaction")
	}
	if n := len(r.coord.PTEntries()); n != 1 {
		t.Fatalf("want 1 protocol-table entry, got %d", n)
	}
	if n := len(r.coord.CheckpointEntries()); n != 1 {
		t.Fatalf("want 1 checkpoint entry, got %d", n)
	}
	if dump := r.coord.PTDump(); len(dump) != 1 || dump[0].Txn != txn {
		t.Fatalf("PTDump: %+v", dump)
	}
	out, err := r.coord.Resolve(txn)
	if err != nil || out != wire.Commit {
		t.Fatalf("Resolve: %s, %v", out, err)
	}
	// The rig acks synchronously, so the entry is already retired (PrA
	// forgets on the last ack); a retired or unknown txn errors.
	if _, err := r.coord.Resolve(txn); err == nil ||
		!strings.Contains(err.Error(), "not in protocol table") {
		t.Fatalf("retired-txn Resolve error: %v", err)
	}
	if _, err := r.coord.Resolve(wire.TxnID{Coord: "coord", Seq: 999}); err == nil ||
		!strings.Contains(err.Error(), "not in protocol table") {
		t.Fatalf("unknown-txn Resolve error: %v", err)
	}
	if open, _ := r.coord.VoteStatus(wire.TxnID{Coord: "coord", Seq: 999}); open {
		t.Fatal("unknown transaction must not report an open vote")
	}
	r.settle()
	r.checkClean()
}
