// Command prany-check is the bounded-exhaustive model checker: it
// enumerates every crash/ordering schedule of a small mixed-protocol
// cluster — not seeded samples like prany-chaos — and judges each maximal
// schedule against the paper's operational correctness criterion
// (Definition 1). The default run is E15: the exhaustive re-derivation of
// Theorems 1 and 2, with machine-found minimal counterexamples for the
// straw men and a universally-quantified clean sweep for PrAny.
//
// Usage:
//
//	prany-check                      # E15 matrix: U2PC vs C2PC vs PrAny
//	prany-check -json                # the same, as JSON (BENCH_mcheck.json)
//	prany-check -strategy u2pc       # one strategy; exit 1 on any violation
//	prany-check -strategy u2pc -stop # stop at the first counterexample
//	prany-check -strategy prany-paxos # E19: replicated vs single decision under
//	                                  # permanent coordinator death
//	prany-check -strategy prany-byz   # E20: per-behavior Byzantine cells; exit 1
//	                                  # on any honest-site violation
//	prany-check -replay 'u2pc/PrN|pa=PrA,pc=PrC|t2|crash=coord:af:commit.c:0|vt'
//
// Every counterexample prints as a schedule string; -replay re-executes
// one deterministically and prints the judge's verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prany/internal/chaos"
	"prany/internal/core"
	"prany/internal/experiments"
	"prany/internal/mcheck"
	"prany/internal/obs"
	"prany/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("prany-check", flag.ContinueOnError)
	fs.SetOutput(stdout)
	strategy := fs.String("strategy", "", "check one strategy (prany, u2pc, c2pc); empty runs the E15 matrix")
	native := fs.String("native", "prn", "native protocol for u2pc/c2pc")
	txns := fs.Int("txns", 2, "transactions per episode")
	maxSkip := fs.Int("maxskip", 0, "crash-point skip bound (0 = default 1, negative = skip-0 plans only)")
	stop := fs.Bool("stop", false, "stop at the first counterexample")
	jsonOut := fs.Bool("json", false, "emit results as JSON")
	replay := fs.String("replay", "", "replay one schedule string and print its verdict")
	timeline := fs.Bool("timeline", false, "with -replay: print the per-txn event timeline of the schedule")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *replay != "" {
		return runReplay(*replay, *timeline, stdout)
	}
	if *strategy == "prany-paxos" {
		return runPaxos(*jsonOut, stdout)
	}
	if base, ok := strings.CutSuffix(*strategy, "-byz"); ok && base != "" {
		return runByz(base, *native, *jsonOut, stdout)
	}
	if *strategy == "" {
		return runMatrix(*txns, *maxSkip, *jsonOut, stdout)
	}
	return runOne(*strategy, *native, *txns, *maxSkip, *stop, *jsonOut, stdout)
}

// runPaxos is the E19 verdict: under permanent coordinator death (+down),
// the replicated decider (3 acceptors) must sweep clean with zero blocked
// terminal states, while the very same crash budget against the plain
// single-decider coordinator must exhibit the blocking state. Exit 0 iff
// both halves hold.
func runPaxos(jsonOut bool, stdout io.Writer) int {
	// One transaction at skip-0 keeps the acceptor-interleaving space
	// exhaustively explorable; the budget still contains every crash
	// archetype, including the vote-forward loss and acceptor accept-force
	// crashes with recovery.
	paxos := mcheck.Exhaust(mcheck.Config{
		Strategy: core.StrategyPrAny, Acceptors: 3, CoordDown: true, Txns: 1, MaxSkip: -1,
	})
	single := mcheck.Exhaust(mcheck.Config{
		Strategy: core.StrategyPrAny, CoordDown: true, Txns: 1, MaxSkip: -1,
	})

	verdict := ""
	if !paxos.Clean() {
		verdict = fmt.Sprintf("replicated decider not clean: %d violating, %d blocked", paxos.Violating, paxos.Blocked)
	} else if single.Blocked == 0 {
		verdict = "single decider did not block under permanent coordinator death"
	}

	if jsonOut {
		out := struct {
			Experiment string           `json:"experiment"`
			Cluster    string           `json:"cluster"`
			Rows       []*mcheck.Result `json:"rows"`
			Verdict    string           `json:"verdict"`
		}{"E19 replicated vs single decision under permanent coordinator death",
			"coord + pa=PrA + pc=PrC (+ a1..a3)", []*mcheck.Result{paxos, single}, "pass"}
		if verdict != "" {
			out.Verdict = verdict
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stdout, "encoding: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "E19: permanent coordinator death — replicated (Paxos Commit, 3 acceptors) vs single decision\n")
		fmt.Fprintf(stdout, "%-22s %6s %9s %8s %10s %8s\n",
			"config", "plans", "schedules", "explored", "violating", "blocked")
		for _, r := range []*mcheck.Result{paxos, single} {
			fmt.Fprintf(stdout, "%-22s %6d %9d %8d %10d %8d\n",
				r.Label, r.Plans, r.Schedules, r.Explored, r.Violating, r.Blocked)
		}
		printFindings(stdout, single)
		if verdict != "" {
			fmt.Fprintf(stdout, "\nFAIL: %s\n", verdict)
		} else {
			fmt.Fprintf(stdout, "\npass: replicated decider exhaustively clean and non-blocking; single decider blocks in %d schedules\n", single.Blocked)
		}
	}
	if verdict != "" {
		return 1
	}
	return 0
}

// runByz checks one strategy against every adversary behavior at the
// Byzantine participant: one exhaustive cell (1 txn, skip-0 plans) per
// behavior, each judged with attribution. Exit 1 on any honest-site
// violation, episode error or truncation — and, for PrAny, on any
// violation spreading past the lying site. Straw-man defeats (contained
// damage, retention collapse) are reported, not failed: they are the
// experiment's expected shape.
func runByz(base, native string, jsonOut bool, stdout io.Writer) int {
	strat, nat, err := parseStrategy(base, native)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 2
	}
	var results []*mcheck.Result
	for _, b := range []chaos.Behavior{chaos.Equivocate, chaos.LieInquiry, chaos.SpuriousAck, chaos.VoteFlip} {
		results = append(results, mcheck.Exhaust(mcheck.Config{
			Strategy: strat, Native: nat, Txns: 1, MaxSkip: -1,
			Adversary: &chaos.Adversary{Site: experiments.ByzSite, Behaviors: []chaos.Behavior{b}},
		}))
	}

	verdict := ""
	for _, r := range results {
		switch {
		case len(r.Errors) > 0:
			verdict = fmt.Sprintf("%s: %d episode errors (first: %s)", r.Label, len(r.Errors), r.Errors[0])
		case r.Truncated:
			verdict = fmt.Sprintf("%s: exploration truncated — not exhaustive", r.Label)
		case r.HonestViolating > 0:
			verdict = fmt.Sprintf("%s: %d schedules with honest-site untainted violations — repo bug", r.Label, r.HonestViolating)
		case strat == core.StrategyPrAny && r.SpreadViolating > 0:
			verdict = fmt.Sprintf("%s: %d schedules spread to honest sites", r.Label, r.SpreadViolating)
		}
		if verdict != "" {
			break
		}
	}

	if jsonOut {
		out := struct {
			Experiment string           `json:"experiment"`
			Cluster    string           `json:"cluster"`
			Rows       []*mcheck.Result `json:"rows"`
			Verdict    string           `json:"verdict"`
		}{"E20 Byzantine cells: " + base, "coord + pa=PrA + pc=PrC, byz=" + string(experiments.ByzSite),
			results, "pass"}
		if verdict != "" {
			out.Verdict = verdict
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stdout, "encoding: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "E20: %s under one Byzantine participant (%s), per behavior — t1, skip-0 plans\n",
			base, experiments.ByzSite)
		fmt.Fprintf(stdout, "%-24s %9s %10s %7s %7s %10s\n",
			"config", "schedules", "violating", "honest", "spread", "contained")
		for _, r := range results {
			fmt.Fprintf(stdout, "%-24s %9d %10d %7d %7d %10d\n",
				r.Label, r.Schedules, r.Violating, r.HonestViolating, r.SpreadViolating, r.ContainedViolating)
		}
		for _, r := range results {
			printFindings(stdout, r)
		}
		if verdict != "" {
			fmt.Fprintf(stdout, "\nFAIL: %s\n", verdict)
		} else {
			fmt.Fprintf(stdout, "\npass: no honest-site violation in any schedule of any behavior\n")
		}
	}
	if verdict != "" {
		return 1
	}
	return 0
}

// runReplay re-executes one counterexample (or any hand-written schedule)
// and prints the judge's full verdict. Exit 0 means the schedule judged
// clean, 1 that it violated Definition 1, 2 that it failed to replay.
func runReplay(schedule string, timeline bool, stdout io.Writer) int {
	sched, err := mcheck.ParseSchedule(schedule)
	if err != nil {
		fmt.Fprintf(stdout, "replay: %v\n", err)
		return 2
	}
	var rec *obs.Recorder
	if timeline {
		rec = obs.NewRecorder(0)
	}
	rep, err := mcheck.ReplayTraced(sched, rec)
	if err != nil {
		fmt.Fprintf(stdout, "replay: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "replay: %s\n", schedule)
	fmt.Fprintln(stdout, rep.Summary())
	if timeline {
		fmt.Fprintln(stdout, "timeline:")
		for _, line := range strings.Split(strings.TrimRight(rec.Timeline(), "\n"), "\n") {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
	}
	if rep.OK() {
		return 0
	}
	return 1
}

// runMatrix is E15: all three strategies over the same cluster and
// budget; exit 0 iff the theorem pattern holds (PrAny clean, each straw
// man showing its theorem's counterexample).
func runMatrix(txns, maxSkip int, jsonOut bool, stdout io.Writer) int {
	rows := experiments.McheckMatrix(txns, maxSkip)
	verdictErr := experiments.McheckVerdict(rows)

	if jsonOut {
		out := struct {
			Experiment string           `json:"experiment"`
			Txns       int              `json:"txns_per_episode"`
			Cluster    string           `json:"cluster"`
			Rows       []*mcheck.Result `json:"rows"`
			Verdict    string           `json:"verdict"`
		}{"E15 exhaustive theorem matrix", txns, "coord + pa=PrA + pc=PrC", rows, "pass"}
		if verdictErr != nil {
			out.Verdict = verdictErr.Error()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stdout, "encoding: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "E15: bounded-exhaustive theorem matrix — %d txns, cluster coord+pa(PrA)+pc(PrC)\n", txns)
		fmt.Fprintf(stdout, "%-10s %6s %9s %8s %7s %10s %10s %8s\n",
			"strategy", "plans", "schedules", "explored", "deduped", "ample", "violating", "elapsed")
		for _, r := range rows {
			fmt.Fprintf(stdout, "%-10s %6d %9d %8d %7d %10d %10d %6dms\n",
				r.Label, r.Plans, r.Schedules, r.Explored, r.Deduped, r.AmpleSteps, r.Violating, r.ElapsedMS)
		}
		for _, r := range rows {
			printFindings(stdout, r)
		}
		if verdictErr != nil {
			fmt.Fprintf(stdout, "\nFAIL: %v\n", verdictErr)
		} else {
			fmt.Fprintf(stdout, "\npass: PrAny exhaustively clean; both straw men yield machine-found counterexamples\n")
		}
	}
	if verdictErr != nil {
		return 1
	}
	return 0
}

// runOne checks a single strategy; exit 1 on any violation, truncation or
// episode error — the "is this configuration correct" mode.
func runOne(strategy, native string, txns, maxSkip int, stop, jsonOut bool, stdout io.Writer) int {
	strat, nat, err := parseStrategy(strategy, native)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 2
	}
	res := mcheck.Exhaust(mcheck.Config{
		Strategy: strat, Native: nat, Txns: txns, MaxSkip: maxSkip, StopAtFirst: stop,
	})
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(stdout, "encoding: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "%s: %d plans, %d schedules judged (%d states explored, %d deduped, %d ample) in %dms\n",
			res.Label, res.Plans, res.Schedules, res.Explored, res.Deduped, res.AmpleSteps, res.ElapsedMS)
		printFindings(stdout, res)
		if res.Clean() {
			fmt.Fprintf(stdout, "ok: no Definition-1 violation in any schedule\n")
		} else {
			fmt.Fprintf(stdout, "FAIL: %d violating schedules of %d\n", res.Violating, res.Schedules)
		}
	}
	if res.Clean() {
		return 0
	}
	return 1
}

// printFindings renders a result's counterexamples, errors and
// truncation. Counterexamples beyond the stored cap are counted, never
// silently dropped.
func printFindings(w io.Writer, r *mcheck.Result) {
	for _, cex := range r.Counterexamples {
		fmt.Fprintf(w, "\n%s %s counterexample:\n  %s\n", r.Label, cex.Kind, cex.Schedule)
		for _, line := range strings.Split(cex.Summary, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
		fmt.Fprintf(w, "  replay: go run ./cmd/prany-check -replay '%s'\n", cex.Schedule)
	}
	if extra := r.Violating - len(r.Counterexamples); extra > 0 {
		fmt.Fprintf(w, "  (+%d more violating schedules not stored)\n", extra)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(w, "%s episode error: %s\n", r.Label, e)
	}
	if r.Truncated {
		fmt.Fprintf(w, "%s: TRUNCATED at the state cap — this sweep is not exhaustive\n", r.Label)
	}
}

func parseStrategy(s, native string) (core.Strategy, wire.Protocol, error) {
	nat, err := wire.ParseProtocol(native)
	if err != nil {
		return 0, 0, err
	}
	switch strings.ToLower(s) {
	case "prany":
		return core.StrategyPrAny, nat, nil
	case "u2pc":
		return core.StrategyU2PC, nat, nil
	case "c2pc":
		return core.StrategyC2PC, nat, nil
	}
	return 0, 0, fmt.Errorf("unknown strategy %q (want prany, u2pc or c2pc)", s)
}
