package main

import (
	"strings"
	"testing"
)

// TestRunReplayCleanSchedule replays a no-fault PrAny schedule: clean
// verdict, exit 0.
func TestRunReplayCleanSchedule(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-replay", "prany|pa=PrA,pc=PrC|t1|crash=-|"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: operationally correct") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}
}

// TestRunReplayViolatingSchedule replays the C2PC no-fault retention
// schedule: FAIL verdict, exit 1.
func TestRunReplayViolatingSchedule(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-replay", "c2pc/PrN|pa=PrA,pc=PrC|t1|crash=-|"}, &out)
	if code != 1 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "retention") {
		t.Fatalf("missing retention verdict:\n%s", out.String())
	}
}

// TestRunReplayMalformed exits 2 with a parse error.
func TestRunReplayMalformed(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-replay", "not-a-schedule"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
}

// TestRunSingleStrategy checks the one-strategy mode in its quick budget:
// PrAny exits 0 and prints the clean verdict; C2PC exits 1 with a
// replayable counterexample line.
func TestRunSingleStrategy(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-strategy", "prany", "-txns", "1", "-maxskip", "-1"}, &out)
	if code != 0 {
		t.Fatalf("prany exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: no Definition-1 violation") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{"-strategy", "c2pc", "-txns", "1", "-maxskip", "-1", "-stop"}, &out)
	if code != 1 {
		t.Fatalf("c2pc exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "-replay 'c2pc/PrN|") {
		t.Fatalf("missing replayable counterexample:\n%s", out.String())
	}
}

// TestRunUnknownStrategy exits 2.
func TestRunUnknownStrategy(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-strategy", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
}
