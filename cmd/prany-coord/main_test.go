package main

import (
	"strings"
	"testing"

	"prany/internal/core"
	"prany/internal/wire"
)

func TestSiteFlagsParse(t *testing.T) {
	var f siteFlags
	if err := f.Set("hotel=pra@127.0.0.1:7101"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("airline=prc@127.0.0.1:7102"); err != nil {
		t.Fatal(err)
	}
	if f.addrs["hotel"] != "127.0.0.1:7101" || f.protos["hotel"] != wire.PrA {
		t.Fatalf("hotel parsed as %q/%v", f.addrs["hotel"], f.protos["hotel"])
	}
	if f.protos["airline"] != wire.PrC {
		t.Fatalf("airline proto %v", f.protos["airline"])
	}
	s := f.String()
	if !strings.Contains(s, "hotel=PrA@127.0.0.1:7101") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSiteFlagsRejectMalformed(t *testing.T) {
	var f siteFlags
	for _, bad := range []string{"", "hotel", "hotel=pra", "hotel=@addr", "hotel=prany@x", "hotel=bogus@x"} {
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	s, n, err := parseStrategy("prany", "prn")
	if err != nil || s != core.StrategyPrAny || n != wire.PrN {
		t.Fatalf("prany: %v %v %v", s, n, err)
	}
	s, n, err = parseStrategy("U2PC", "prc")
	if err != nil || s != core.StrategyU2PC || n != wire.PrC {
		t.Fatalf("u2pc: %v %v %v", s, n, err)
	}
	if _, _, err := parseStrategy("bogus", "prn"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, _, err := parseStrategy("prany", "bogus"); err == nil {
		t.Fatal("bogus native accepted")
	}
}
