// Command prany-coord runs a coordinator site over TCP and drives one
// distributed transaction across prany-server participants, committing it
// with Presumed Any (or a straw-man strategy for experimentation).
//
// Usage:
//
//	prany-coord -id coord -listen :7100 -wal coord.wal \
//	            -site hotel=pra@127.0.0.1:7101 \
//	            -site airline=prc@127.0.0.1:7102 \
//	            put hotel room-42 booked \
//	            put airline seat-17C booked \
//	            get hotel room-42 \
//	            commit
//
// The trailing arguments are a tiny script: `put <site> <key> <value>`,
// `get <site> <key>`, `del <site> <key>`, and a final `commit` or `abort`.
// Restarting on the same -wal re-drives unfinished decisions (Section 4.2).
package main

import (
	"flag"
	"fmt"
	"log"

	"strings"
	"time"

	"prany/internal/core"
	"prany/internal/metrics"
	"prany/internal/obs"
	"prany/internal/site"
	"prany/internal/transport"
	"prany/internal/wal"
	"prany/internal/wire"
)

func main() {
	id := flag.String("id", "coord", "coordinator site identifier")
	listen := flag.String("listen", ":7100", "listen address")
	walPath := flag.String("wal", "", "write-ahead log file (default <id>.wal)")
	strategyName := flag.String("strategy", "prany", "integration strategy: prany, u2pc or c2pc")
	nativeName := flag.String("native", "prn", "native protocol for u2pc/c2pc")
	voteTimeout := flag.Duration("vote-timeout", 2*time.Second, "voting phase timeout")
	drain := flag.Duration("drain", 3*time.Second, "how long to drain acknowledgments before exiting")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint the WAL after this many forced records (0 disables; keeps recovery scans O(active))")
	epoch := flag.Bool("epoch", false, "seal concurrent commit decisions into epochs: one forced WAL record and one fan-out batch per epoch")
	epochWindow := flag.Duration("epoch-window", 0, "with -epoch: linger this long collecting an epoch before sealing (0 = pure piggybacking)")
	httpAddr := flag.String("http", "", "introspection listen address (e.g. :7171): /metrics, /txns, /trace, /debug/pprof/")
	traceCap := flag.Int("trace-buf", 1<<14, "trace ring-buffer capacity in events (with -http)")
	var sites siteFlags
	flag.Var(&sites, "site", "participant as name=proto@host:port (repeatable)")
	acceptorsFlag := flag.String("acceptors", "", "replicated-decision acceptor set as name=host:port,... (2F+1 entries; decisions are then fixed by Paxos Commit over the set instead of the local log alone)")
	flag.Parse()

	if *walPath == "" {
		*walPath = *id + ".wal"
	}
	strategy, native, err := parseStrategy(*strategyName, *nativeName)
	if err != nil {
		log.Fatal(err)
	}
	acceptorIDs, acceptorAddrs, err := parseAcceptors(*acceptorsFlag)
	if err != nil {
		log.Fatal(err)
	}
	for aid, addr := range acceptorAddrs {
		if sites.addrs == nil {
			sites.addrs = make(map[wire.SiteID]string)
		}
		sites.addrs[aid] = addr
	}

	met := metrics.NewRegistry()
	var rec *obs.Recorder
	if *httpAddr != "" {
		rec = obs.NewRecorder(*traceCap)
	}

	net, err := transport.NewTCPNetwork(transport.TCPOptions{
		Listen: *listen,
		Addrs:  sites.addrs,
		Logf:   log.Printf,
		Met:    met,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	pcp := core.NewPCP()
	for name, proto := range sites.protos {
		pcp.Set(name, proto)
	}
	store, err := wal.OpenFileStore(*walPath)
	if err != nil {
		log.Fatal(err)
	}
	s, err := site.New(site.Config{
		ID:    wire.SiteID(*id),
		Proto: wire.PrN,
		Net:   net,
		PCP:   pcp,
		Coordinator: core.CoordinatorConfig{
			Strategy:    strategy,
			Native:      native,
			VoteTimeout: *voteTimeout,
		},
		LogStore:        store,
		CheckpointEvery: *ckptEvery,
		EpochCommit:     *epoch,
		EpochWindow:     *epochWindow,
		Acceptors:       acceptorIDs,
		Met:             met,
		Obs:             rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr, obs.Introspection{Met: met, Rec: rec, Txns: s.PTDump})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("introspection on http://%s", srv.Addr())
	}
	log.Printf("coordinator %s (%s) on %s, wal=%s", *id, strategy, net.Addr(), *walPath)

	script := flag.Args()
	if len(script) == 0 {
		// Nothing to run: recovery (if any) has been driven; drain and exit.
		drainAcks(s, *drain)
		return
	}

	txn := s.Begin()
	i := 0
	for i < len(script) {
		switch script[i] {
		case "put":
			need(script, i, 3)
			if err := txn.Put(wire.SiteID(script[i+1]), script[i+2], script[i+3]); err != nil {
				fail(txn, err)
			}
			i += 4
		case "get":
			need(script, i, 2)
			v, err := txn.Get(wire.SiteID(script[i+1]), script[i+2])
			if err != nil {
				fail(txn, err)
			}
			fmt.Printf("%s/%s = %q\n", script[i+1], script[i+2], v)
			i += 3
		case "del":
			need(script, i, 2)
			if err := txn.Delete(wire.SiteID(script[i+1]), script[i+2]); err != nil {
				fail(txn, err)
			}
			i += 3
		case "commit":
			outcome, err := txn.Commit()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("transaction %s: %s\n", txn.ID(), outcome)
			drainAcks(s, *drain)
			return
		case "abort":
			if err := txn.Abort(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("transaction %s: aborted by client\n", txn.ID())
			return
		default:
			log.Fatalf("unknown script word %q", script[i])
		}
	}
	log.Fatal("script must end with commit or abort")
}

// drainAcks ticks until the protocol table empties or the deadline passes,
// so the end record lands before the process exits.
func drainAcks(s *site.Site, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if s.Coordinator().PTSize() == 0 {
			return
		}
		s.Tick()
		time.Sleep(100 * time.Millisecond)
	}
	if n := s.Coordinator().PTSize(); n > 0 {
		log.Printf("exiting with %d transaction(s) still draining; restart to re-drive", n)
	}
}

func need(script []string, i, args int) {
	if i+args >= len(script) {
		log.Fatalf("%s needs %d arguments", script[i], args)
	}
}

func fail(txn *site.Txn, err error) {
	_ = txn.Abort()
	log.Fatal(err)
}

// parseAcceptors decodes the -acceptors list: comma-separated name=host:port
// entries naming the 2F+1 replicated-decision sites.
func parseAcceptors(s string) ([]wire.SiteID, map[wire.SiteID]string, error) {
	if s == "" {
		return nil, nil, nil
	}
	var ids []wire.SiteID
	addrs := make(map[wire.SiteID]string)
	for _, ent := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(ent, "=")
		if !ok || name == "" || addr == "" {
			return nil, nil, fmt.Errorf("-acceptors wants name=host:port entries, got %q", ent)
		}
		ids = append(ids, wire.SiteID(name))
		addrs[wire.SiteID(name)] = addr
	}
	return ids, addrs, nil
}

func parseStrategy(s, native string) (core.Strategy, wire.Protocol, error) {
	n, err := wire.ParseProtocol(native)
	if err != nil {
		return 0, 0, err
	}
	switch strings.ToLower(s) {
	case "prany":
		return core.StrategyPrAny, n, nil
	case "u2pc":
		return core.StrategyU2PC, n, nil
	case "c2pc":
		return core.StrategyC2PC, n, nil
	default:
		return 0, 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// siteFlags parses repeated name=proto@addr flags.
type siteFlags struct {
	addrs  map[wire.SiteID]string
	protos map[wire.SiteID]wire.Protocol
}

func (f *siteFlags) String() string {
	var parts []string
	for id, a := range f.addrs {
		parts = append(parts, fmt.Sprintf("%s=%s@%s", id, f.protos[id], a))
	}
	return strings.Join(parts, ",")
}

func (f *siteFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=proto@host:port, got %q", v)
	}
	protoName, addr, ok := strings.Cut(rest, "@")
	if !ok {
		return fmt.Errorf("want name=proto@host:port, got %q", v)
	}
	proto, err := wire.ParseProtocol(protoName)
	if err != nil || !proto.ParticipantProtocol() {
		return fmt.Errorf("bad protocol %q in %q", protoName, v)
	}
	if f.addrs == nil {
		f.addrs = make(map[wire.SiteID]string)
		f.protos = make(map[wire.SiteID]wire.Protocol)
	}
	f.addrs[wire.SiteID(name)] = addr
	f.protos[wire.SiteID(name)] = proto
	return nil
}
