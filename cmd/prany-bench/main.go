// Command prany-bench runs every experiment in DESIGN.md §4 and prints the
// tables recorded in EXPERIMENTS.md: the per-protocol cost profiles of
// Figures 1-4 (measured against the analytic model), the Theorem 1
// violation table, the Theorem 2 retention growth curve, the Theorem 3
// fault sweep, the who-wins performance matrix, and the read-only
// optimization ablation.
//
// Usage:
//
//	prany-bench               # everything
//	prany-bench -run costs    # one section: costs, theorem1, theorem2,
//	                          # sweep, perf, readonly, iyv, cl, groupcommit,
//	                          # chaos, pipeline, recovery, consensus, epoch
//	prany-bench -run pipeline -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"prany/internal/core"
	"prany/internal/experiments"
	"prany/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// bench carries the output sink and the seed override so every section is
// a method writing to the same place — testable without touching process
// globals.
type bench struct {
	w io.Writer
	// seed overrides every section's random seed when nonzero, so any run
	// reproduces from its printed seed. Zero keeps each section's
	// historical default (sweep 7, perf 99, groupcommit 42, chaos 1),
	// preserving the committed EXPERIMENTS.md numbers.
	seed int64
	// jsonOut switches the sections that declare JSON support in their
	// registry entry to machine-readable output (the BENCH_<name>.json
	// formats); every other section ignores it.
	jsonOut bool
}

// section is one registry entry: the method that runs it and whether it
// honors -json with a BENCH_<name>.json document. The -run and -json help
// strings and the dispatch are all derived from the registry, so adding a
// section is one sectionOrder entry plus one sections line.
type section struct {
	fn   func() error
	json bool
}

var sectionOrder = []string{"costs", "theorem1", "theorem2", "sweep", "perf", "readonly", "iyv", "cl", "groupcommit", "chaos", "pipeline", "obs", "recovery", "consensus", "epoch"}

func run(args []string, stdout io.Writer) int {
	b := &bench{w: stdout}
	sections := map[string]section{
		"costs":       {fn: b.costs},
		"theorem1":    {fn: b.theorem1},
		"theorem2":    {fn: b.theorem2},
		"sweep":       {fn: b.sweep},
		"perf":        {fn: b.perf},
		"readonly":    {fn: b.readonly},
		"iyv":         {fn: b.iyv},
		"cl":          {fn: b.cl},
		"groupcommit": {fn: b.groupcommit},
		"chaos":       {fn: b.chaosMatrix},
		"pipeline":    {fn: b.pipeline},
		"obs":         {fn: b.obs, json: true},
		"recovery":    {fn: b.recovery, json: true},
		"consensus":   {fn: b.consensus, json: true},
		"epoch":       {fn: b.epoch, json: true},
	}
	var jsonNames []string
	for _, name := range sectionOrder {
		if sections[name].json {
			jsonNames = append(jsonNames, name)
		}
	}

	fs := flag.NewFlagSet("prany-bench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	which := fs.String("run", "all", "which section to run: all, "+strings.Join(sectionOrder, ", "))
	seed := fs.Int64("seed", 0, "override every section's random seed (0 = per-section defaults)")
	jsonOut := fs.Bool("json", false, "with -run "+strings.Join(jsonNames, ", ")+": emit the results as JSON (the BENCH_<section>.json format)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	b.seed, b.jsonOut = *seed, *jsonOut

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stdout, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stdout, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stdout, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stdout, err)
			}
		}()
	}

	if *which == "all" {
		for _, name := range sectionOrder {
			if err := sections[name].fn(); err != nil {
				fmt.Fprintf(stdout, "%s: %v\n", name, err)
				return 1
			}
			fmt.Fprintln(stdout)
		}
		return 0
	}
	sec, ok := sections[strings.ToLower(*which)]
	if !ok {
		fmt.Fprintf(stdout, "unknown section %q (want all, %s)\n", *which, strings.Join(sectionOrder, ", "))
		return 2
	}
	if err := sec.fn(); err != nil {
		fmt.Fprintln(stdout, err)
		return 1
	}
	return 0
}

func (b *bench) header(title string) {
	fmt.Fprintln(b.w, title)
	fmt.Fprintln(b.w, strings.Repeat("-", len(title)))
}

// sectionSeed resolves one section's seed and prints it, so every table's
// header names the seed that regenerates it.
func (b *bench) sectionSeed(def int64) int64 {
	seed := def
	if b.seed != 0 {
		seed = b.seed
	}
	fmt.Fprintf(b.w, "seed: %d\n", seed)
	return seed
}

// costs prints E1-E4: measured cost profiles vs the analytic model.
func (b *bench) costs() error {
	b.header("E1-E4: per-transaction cost profiles (Figures 2, 3, 4a/b, 1a/b)")
	fmt.Fprintf(b.w, "%-18s %-7s %6s | %9s %9s %9s %9s %6s %5s | %s\n",
		"protocol", "outcome", "n", "coordF", "coordRec", "partF", "partRec", "msgs", "acks", "model")
	mixes := [][]wire.Protocol{
		experiments.Homogeneous(wire.PrN, 2),
		experiments.Homogeneous(wire.PrN, 4),
		experiments.Homogeneous(wire.PrN, 8),
		experiments.Homogeneous(wire.PrA, 2),
		experiments.Homogeneous(wire.PrA, 4),
		experiments.Homogeneous(wire.PrA, 8),
		experiments.Homogeneous(wire.PrC, 2),
		experiments.Homogeneous(wire.PrC, 4),
		experiments.Homogeneous(wire.PrC, 8),
		{wire.PrA, wire.PrC},
		experiments.MixedThirds(3),
		experiments.MixedThirds(6),
		experiments.MixedThirds(9),
	}
	for _, mix := range mixes {
		for _, outcome := range []wire.Outcome{wire.Commit, wire.Abort} {
			got, err := experiments.MeasureCost(mix, outcome)
			if err != nil {
				return fmt.Errorf("%v %s: %v", mix, outcome, err)
			}
			want := experiments.ExpectedCost(mix, outcome)
			verdict := "MATCH"
			if got != want {
				verdict = fmt.Sprintf("MISMATCH (want %+v)", want)
			}
			fmt.Fprintf(b.w, "%-18s %-7s %6d | %9d %9d %9d %9d %6d %5d | %s\n",
				got.Label, outcome, got.N, got.CoordForces, got.CoordRecords,
				got.PartForces, got.PartRecords, got.Messages, got.Acks, verdict)
		}
	}
	return nil
}

// theorem1 prints E5: the adversarial schedules of Theorem 1.
func (b *bench) theorem1() error {
	b.header("E5: Theorem 1 — U2PC violates atomicity, PrAny does not")
	rows, err := experiments.Theorem1()
	if err != nil {
		return err
	}
	fmt.Fprintf(b.w, "%-12s %-20s %11s %9s\n", "strategy", "schedule", "violations", "diverged")
	for _, r := range rows {
		fmt.Fprintf(b.w, "%-12s %-20s %11d %9v\n", r.Strategy, r.Schedule, r.Violations, r.Diverged)
	}
	return nil
}

// theorem2 prints E6: retention growth under C2PC vs PrAny.
func (b *bench) theorem2() error {
	b.header("E6: Theorem 2 — C2PC retention grows without bound, PrAny drains")
	fmt.Fprintf(b.w, "%-12s %6s %9s %13s\n", "strategy", "txns", "retained", "pinnedRecords")
	for _, txns := range []int{10, 50, 100, 200} {
		for _, s := range []struct {
			strategy core.Strategy
			native   wire.Protocol
		}{{core.StrategyC2PC, wire.PrN}, {core.StrategyPrAny, wire.PrN}} {
			pt, err := experiments.Theorem2(s.strategy, s.native, txns)
			if err != nil {
				return err
			}
			fmt.Fprintf(b.w, "%-12s %6d %9d %13d\n", pt.Strategy, pt.Txns, pt.Retained, pt.StableRecords)
		}
	}
	return nil
}

// sweep prints E7: Monte-Carlo fault injection under PrAny.
func (b *bench) sweep() error {
	b.header("E7: Theorem 3 — PrAny under omission faults and crashes")
	seed := b.sectionSeed(7)
	fmt.Fprintf(b.w, "%6s %6s %8s %8s %8s %11s %9s %9s\n",
		"drop%", "txns", "commits", "aborts", "crashes", "violations", "quiesced", "leftover")
	for _, p := range []float64{0, 0.05, 0.10, 0.20} {
		res, err := experiments.FaultSweep(core.StrategyPrAny, wire.PrN, p, 40, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(b.w, "%6.0f %6d %8d %8d %8d %11d %9v %9d\n",
			p*100, res.Txns, res.Commits, res.Aborts, res.Crashes,
			res.Violations, res.Quiesced, res.Leftover)
	}
	return nil
}

// perf prints E8: the who-wins matrix across commit ratios.
func (b *bench) perf() error {
	b.header("E8: who wins — throughput and per-txn costs across commit ratios")
	seed := b.sectionSeed(99)
	fmt.Fprintf(b.w, "%-18s %8s | %9s %12s %10s %10s\n",
		"protocol", "commit%", "txns/s", "meanLatency", "forces/txn", "msgs/txn")
	for _, ratio := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		mixes := [][]wire.Protocol{
			experiments.Homogeneous(wire.PrN, 3),
			experiments.Homogeneous(wire.PrA, 3),
			experiments.Homogeneous(wire.PrC, 3),
			experiments.MixedThirds(3),
		}
		if ratio == 1.0 {
			// The one-phase and coordinator-log extensions join the
			// commit-only row (their aborts arise from execution failures,
			// not prepare-time no votes, so the poisoned-abort workload
			// does not apply).
			mixes = append(mixes,
				experiments.Homogeneous(wire.IYV, 3),
				experiments.Homogeneous(wire.CL, 3))
		}
		for _, mix := range mixes {
			pt, err := experiments.MeasurePerf(mix, ratio, 200, 4, seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(b.w, "%-18s %8.0f | %9.0f %12s %10.2f %10.2f\n",
				pt.Label, ratio*100, pt.TxnsPerSec, pt.MeanLatency.Round(1000), pt.ForcesPerTxn, pt.MsgsPerTxn)
		}
		fmt.Fprintln(b.w)
	}
	return nil
}

// iyv prints E11: the implicit yes-vote extension — the paper conclusion's
// future-work protocol integrated under the same criterion.
func (b *bench) iyv() error {
	b.header("E11: implicit yes-vote (one-phase) extension, commit costs")
	fmt.Fprintf(b.w, "%-18s %6s | %9s %9s %9s %9s %6s %5s | %s\n",
		"protocol", "n", "coordF", "coordRec", "partF", "partRec", "msgs", "acks", "model")
	rows := [][]wire.Protocol{
		experiments.Homogeneous(wire.IYV, 2),
		experiments.Homogeneous(wire.IYV, 4),
		experiments.Homogeneous(wire.IYV, 8),
		{wire.IYV, wire.PrA, wire.PrC},
		{wire.IYV, wire.IYV, wire.PrN, wire.PrC},
	}
	for _, mix := range rows {
		got, err := experiments.MeasureCost(mix, wire.Commit)
		if err != nil {
			return err
		}
		want := experiments.ExpectedCost(mix, wire.Commit)
		verdict := "MATCH"
		if got != want {
			verdict = fmt.Sprintf("MISMATCH (want %+v)", want)
		}
		fmt.Fprintf(b.w, "%-18s %6d | %9d %9d %9d %9d %6d %5d | %s\n",
			got.Label, got.N, got.CoordForces, got.CoordRecords,
			got.PartForces, got.PartRecords, got.Messages, got.Acks, verdict)
	}
	fmt.Fprintln(b.w)
	fmt.Fprintln(b.w, "reference: PrA homogeneous commits (two-phase baseline)")
	for _, n := range []int{2, 4, 8} {
		got, err := experiments.MeasureCost(experiments.Homogeneous(wire.PrA, n), wire.Commit)
		if err != nil {
			return err
		}
		fmt.Fprintf(b.w, "%-18s %6d | %9d %9d %9d %9d %6d %5d |\n",
			got.Label, got.N, got.CoordForces, got.CoordRecords,
			got.PartForces, got.PartRecords, got.Messages, got.Acks)
	}
	return nil
}

// cl prints E12: the coordinator-log extension — participants log nothing,
// the coordinator's log is the system's only log.
func (b *bench) cl() error {
	b.header("E12: coordinator log (participants log nothing), commit costs")
	fmt.Fprintf(b.w, "%-22s %6s | %9s %9s %9s %9s %6s %5s | %s\n",
		"protocol", "n", "coordF", "coordRec", "partF", "partRec", "msgs", "acks", "model")
	rows := [][]wire.Protocol{
		experiments.Homogeneous(wire.CL, 2),
		experiments.Homogeneous(wire.CL, 4),
		experiments.Homogeneous(wire.CL, 8),
		{wire.CL, wire.PrA, wire.PrC},
		{wire.CL, wire.IYV, wire.PrN},
	}
	for _, mix := range rows {
		got, err := experiments.MeasureCost(mix, wire.Commit)
		if err != nil {
			return err
		}
		want := experiments.ExpectedCost(mix, wire.Commit)
		verdict := "MATCH"
		if got != want {
			verdict = fmt.Sprintf("MISMATCH (want %+v)", want)
		}
		fmt.Fprintf(b.w, "%-22s %6d | %9d %9d %9d %9d %6d %5d | %s\n",
			got.Label, got.N, got.CoordForces, got.CoordRecords,
			got.PartForces, got.PartRecords, got.Messages, got.Acks, verdict)
	}
	fmt.Fprintln(b.w)
	fmt.Fprintln(b.w, "note: partF/partRec are 0 in every CL row — the participants log nothing;")
	fmt.Fprintln(b.w, "the coordinator pays one forced remote-writes record per shipped vote.")
	return nil
}

// groupcommit prints E13: the group-commit comparison — the same concurrent
// commit workload with the log's flusher off and on, over stores with 1ms of
// simulated per-flush device latency. The logical force count is identical
// in both rows; the physical flush count collapses as concurrent forces at
// the coordinator coalesce.
func (b *bench) groupcommit() error {
	b.header("E13: group commit — physical flushes collapse under concurrency")
	seed := b.sectionSeed(42)
	fmt.Fprintf(b.w, "%7s %6s | %9s %12s %10s %10s %14s %9s\n",
		"clients", "group", "txns/s", "meanLatency", "forces/txn", "syncs/txn", "coordsyncs/txn", "recs/sync")
	for _, clients := range []int{1, 4, 16} {
		for _, gc := range []bool{false, true} {
			pt, err := experiments.MeasureGroupCommit(gc, clients, 200, time.Millisecond, seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(b.w, "%7d %6v | %9.0f %12s %10.2f %10.2f %14.2f %9.2f\n",
				clients, gc, pt.TxnsPerSec, pt.MeanLatency.Round(1000),
				pt.ForcesPerTxn, pt.SyncsPerTxn, pt.CoordSyncsPerTxn, pt.MeanBatch)
		}
		fmt.Fprintln(b.w)
	}
	return nil
}

// chaosMatrix prints a compact E14: seeded chaos episodes under U2PC, C2PC
// and PrAny with identical fault plans per seed. The full-size matrix lives
// in BENCH_chaos.json via `prany-chaos -e14 -json`.
func (b *bench) chaosMatrix() error {
	b.header("E14: chaos matrix — operational correctness under seeded fault plans")
	seed := b.sectionSeed(1)
	const episodes, txns = 12, 12
	seeds := make([]int64, episodes)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	rows, err := experiments.ChaosMatrix(seeds, txns, 1500*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Fprintf(b.w, "%-12s %8s %8s %8s %8s | %9s %9s %9s\n",
		"strategy", "commits", "aborts", "errors", "crashes",
		"atomicity", "retention", "opcheck")
	for _, r := range rows {
		fmt.Fprintf(b.w, "%-12s %8d %8d %8d %8d | %9d %9d %9d\n",
			r.Strategy, r.Commits, r.Aborts, r.Errors, r.Crashes,
			r.AtomicityViolations, r.RetentionLeaks, r.OpcheckViolations)
	}
	return nil
}

// pipeline prints E16: the pipelined-commit-stream comparison — the same
// concurrent commit workload over real TCP with transport frame batching
// off and on. msgs/txn is the logical protocol cost (identical in both
// modes, matching the paper's tables); frames/txn and msgs/frame show the
// physical wire writes collapsing as each link's writer drains whatever
// accumulated while its previous write syscall was in flight — the network
// twin of E13's Forces/Syncs split.
func (b *bench) pipeline() error {
	b.header("E16: pipelined commit streams — wire frames collapse under concurrency")
	seed := b.sectionSeed(16)
	fmt.Fprintf(b.w, "%7s %6s | %9s %12s %10s %12s %11s %10s | %9s %9s %9s\n",
		"clients", "batch", "txns/s", "meanLatency", "msgs/txn", "frames/txn", "msgs/frame", "bytes/txn",
		"p50", "p95", "p99")
	for _, clients := range []int{16, 64, 256} {
		for _, batching := range []bool{false, true} {
			pt, err := experiments.MeasurePipeline(batching, clients, 2000, seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(b.w, "%7d %6v | %9.0f %12s %10.2f %12.2f %11.2f %10.0f | %9s %9s %9s\n",
				clients, batching, pt.TxnsPerSec, pt.MeanLatency.Round(1000),
				pt.MsgsPerTxn, pt.FramesPerTxn, pt.MeanFrameBatch, pt.BytesPerTxn,
				pt.LatencyP50.Round(time.Microsecond), pt.LatencyP95.Round(time.Microsecond),
				pt.LatencyP99.Round(time.Microsecond))
		}
		fmt.Fprintln(b.w)
	}
	return nil
}

// obs prints E17: where a committing transaction's wall-clock time goes
// (per-span latency percentiles under the E16 batching-on workload) and
// the live protocol-table retention-age curve — Theorem 2 as the /txns
// endpoint would show it, C2PC's oldest entry aging without bound while
// PrAny's table drains every round.
func (b *bench) obs() error {
	const (
		clients, txns        = 64, 2000
		rounds, txnsPerRound = 5, 8
	)
	if !b.jsonOut {
		b.header("E17: observability — span latency percentiles and PT retention ages")
	}
	seed := int64(17)
	if b.seed != 0 {
		seed = b.seed
	}
	res, err := experiments.MeasureObs(clients, txns, seed, rounds, txnsPerRound)
	if err != nil {
		return err
	}
	if b.jsonOut {
		out := struct {
			Experiment string                          `json:"experiment"`
			Seed       int64                           `json:"seed"`
			Clients    int                             `json:"clients"`
			Txns       int                             `json:"txns"`
			Rounds     int                             `json:"retention_rounds"`
			PerRound   int                             `json:"txns_per_round"`
			Latency    []experiments.ObsLatencyRow     `json:"latency"`
			Retention  []experiments.ObsRetentionRound `json:"retention"`
		}{"E17 observability", seed, clients, txns, rounds, txnsPerRound, res.Latency, res.Retention}
		enc := json.NewEncoder(b.w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(b.w, "seed: %d\n", seed)
	fmt.Fprintf(b.w, "span latencies (%d clients, %d txns, batching on):\n", clients, txns)
	fmt.Fprintf(b.w, "%-12s %8s | %10s %10s %10s %10s\n", "span", "count", "mean", "p50", "p95", "p99")
	for _, r := range res.Latency {
		fmt.Fprintf(b.w, "%-12s %8d | %10s %10s %10s %10s\n", r.Span, r.Count,
			r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
			r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	}
	fmt.Fprintln(b.w)
	fmt.Fprintf(b.w, "PT retention ages (%d commits/round, 300ms budget/round, coord+pa(PrA)+pc(PrC)):\n", txnsPerRound)
	fmt.Fprintf(b.w, "%5s | %13s %15s | %14s %16s\n",
		"round", "c2pc retained", "c2pc maxAge ms", "prany retained", "prany maxAge ms")
	for _, r := range res.Retention {
		fmt.Fprintf(b.w, "%5d | %13d %15.0f | %14d %16.0f\n",
			r.Round, r.C2PCRetained, r.C2PCMaxAgeMS, r.PrAnyRetained, r.PrAnyMaxAgeMS)
	}
	return nil
}

// recovery prints E18: recovery cost vs history length, with checkpointing
// off and on. The cluster runs terminated transactions to completion,
// strands a fixed active set in doubt, fail-stops every site and recovers
// them all; scanned is the stable records the recovery scans read (from the
// recovery metrics). Without checkpointing the scan grows with the history;
// with it on, it stays in the active-set-plus-cadence envelope however long
// the history.
func (b *bench) recovery() error {
	const (
		every  = 64
		active = 8
	)
	terminated := []int{100, 400, 1600}
	if !b.jsonOut {
		b.header("E18: recovery cost — scan size vs history, checkpointing off/on")
	}
	seed := int64(21)
	if b.seed != 0 {
		seed = b.seed
	}
	type row struct {
		CkptEvery    int     `json:"ckpt_every"`
		Terminated   int     `json:"terminated"`
		Active       int     `json:"active"`
		StableBefore int     `json:"stable_before"`
		Scanned      int     `json:"scanned"`
		Suffix       int     `json:"suffix"`
		Checkpoints  uint64  `json:"checkpoints"`
		Collected    uint64  `json:"collected"`
		ElapsedMS    float64 `json:"elapsed_ms"`
	}
	var rows []row
	for _, cadence := range []int{0, every} {
		for _, m := range terminated {
			pt, err := experiments.MeasureRecovery(cadence, m, active, seed)
			if err != nil {
				return fmt.Errorf("recovery every=%d M=%d: %w", cadence, m, err)
			}
			rows = append(rows, row{
				CkptEvery: pt.CkptEvery, Terminated: pt.Terminated, Active: pt.Active,
				StableBefore: pt.StableBefore, Scanned: pt.Scanned, Suffix: pt.Suffix,
				Checkpoints: pt.Checkpoints, Collected: pt.Collected,
				ElapsedMS: float64(pt.Elapsed.Microseconds()) / 1000,
			})
		}
	}
	if b.jsonOut {
		out := struct {
			Experiment string `json:"experiment"`
			Seed       int64  `json:"seed"`
			Rows       []row  `json:"rows"`
		}{"E18 recovery cost vs log size", seed, rows}
		enc := json.NewEncoder(b.w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(b.w, "seed: %d\n", seed)
	fmt.Fprintf(b.w, "%9s %10s %7s | %12s %8s %7s | %11s %10s %10s\n",
		"ckptEvery", "terminated", "active", "stableBefore", "scanned", "suffix", "checkpoints", "collected", "recoverMs")
	for _, r := range rows {
		fmt.Fprintf(b.w, "%9d %10d %7d | %12d %8d %7d | %11d %10d %10.2f\n",
			r.CkptEvery, r.Terminated, r.Active, r.StableBefore, r.Scanned, r.Suffix,
			r.Checkpoints, r.Collected, r.ElapsedMS)
	}
	return nil
}

// consensus prints E19: the replicated-decision cost — the same concurrent
// TCP commit workload with the decision fixed by the coordinator's local log
// alone (acceptors=0) vs one ballot-0 Paxos Commit round over three acceptor
// sites. msgs/txn and forces/txn show what the quorum round costs; the
// latency percentiles show the extra round trip before a decision is fixed.
// The matching correctness claim is `prany-check -strategy prany-paxos`.
func (b *bench) consensus() error {
	const txns = 1000
	if !b.jsonOut {
		b.header("E19: replicated decision — Paxos Commit (3 acceptors) vs single decider")
	}
	seed := int64(19)
	if b.seed != 0 {
		seed = b.seed
	}
	type row struct {
		Acceptors    int     `json:"acceptors"`
		Clients      int     `json:"clients"`
		Txns         int     `json:"txns"`
		TxnsPerSec   float64 `json:"txns_per_sec"`
		MeanLatUS    float64 `json:"mean_latency_us"`
		MsgsPerTxn   float64 `json:"msgs_per_txn"`
		ForcesPerTxn float64 `json:"forces_per_txn"`
		P50US        float64 `json:"latency_p50_us"`
		P95US        float64 `json:"latency_p95_us"`
		P99US        float64 `json:"latency_p99_us"`
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
	var rows []row
	for _, clients := range []int{8, 32} {
		for _, acceptors := range []int{0, 3} {
			pt, err := experiments.MeasureConsensus(acceptors, clients, txns, seed)
			if err != nil {
				return fmt.Errorf("consensus acceptors=%d clients=%d: %w", acceptors, clients, err)
			}
			rows = append(rows, row{
				Acceptors: pt.Acceptors, Clients: pt.Clients, Txns: pt.Txns,
				TxnsPerSec: pt.TxnsPerSec, MeanLatUS: us(pt.MeanLatency),
				MsgsPerTxn: pt.MsgsPerTxn, ForcesPerTxn: pt.ForcesPerTxn,
				P50US: us(pt.LatencyP50), P95US: us(pt.LatencyP95), P99US: us(pt.LatencyP99),
			})
		}
	}
	if b.jsonOut {
		out := struct {
			Experiment string `json:"experiment"`
			Seed       int64  `json:"seed"`
			Rows       []row  `json:"rows"`
		}{"E19 replicated vs single decision cost", seed, rows}
		enc := json.NewEncoder(b.w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(b.w, "seed: %d\n", seed)
	fmt.Fprintf(b.w, "%9s %7s | %9s %12s %10s %10s | %9s %9s %9s\n",
		"acceptors", "clients", "txns/s", "meanLatency", "msgs/txn", "forces/txn", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(b.w, "%9d %7d | %9.0f %12s %10.2f %10.2f | %9s %9s %9s\n",
			r.Acceptors, r.Clients, r.TxnsPerSec,
			time.Duration(r.MeanLatUS*1000).Round(time.Microsecond),
			r.MsgsPerTxn, r.ForcesPerTxn,
			time.Duration(r.P50US*1000).Round(time.Microsecond),
			time.Duration(r.P95US*1000).Round(time.Microsecond),
			time.Duration(r.P99US*1000).Round(time.Microsecond))
	}
	return nil
}

// epoch prints E21: the epoch-batched commit scheduling comparison — the
// E16 batching-on TCP workload with the coordinator's epoch sealer off and
// on. decisions/txn is the logical decision count (identical in both modes,
// like E16's msgs/txn); recs/txn counts the physical WAL records carrying
// them, which collapse to one forced KRecEpochDecision per epoch; meanEpoch
// is their ratio, the amortization factor.
func (b *bench) epoch() error {
	const (
		txns   = 5000
		window = time.Millisecond
	)
	if !b.jsonOut {
		b.header("E21: epoch-batched commit scheduling — decision records collapse under concurrency")
	}
	seed := int64(23)
	if b.seed != 0 {
		seed = b.seed
	}
	type row struct {
		Epoch      bool    `json:"epoch"`
		WindowMS   float64 `json:"window_ms"`
		Clients    int     `json:"clients"`
		Txns       int     `json:"txns"`
		TxnsPerSec float64 `json:"txns_per_sec"`
		MeanLatUS  float64 `json:"mean_latency_us"`
		MsgsPerTxn float64 `json:"msgs_per_txn"`
		DecPerTxn  float64 `json:"decisions_per_txn"`
		RecsPerTxn float64 `json:"decision_records_per_txn"`
		MeanEpoch  float64 `json:"mean_epoch"`
		P50US      float64 `json:"latency_p50_us"`
		P95US      float64 `json:"latency_p95_us"`
		P99US      float64 `json:"latency_p99_us"`
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
	var rows []row
	for _, clients := range []int{64, 256} {
		for _, on := range []bool{false, true} {
			w := time.Duration(0)
			if on {
				w = window
			}
			pt, err := experiments.MeasureEpoch(on, w, clients, txns, seed)
			if err != nil {
				return fmt.Errorf("epoch on=%v clients=%d: %w", on, clients, err)
			}
			rows = append(rows, row{
				Epoch: pt.Epoch, WindowMS: float64(pt.Window.Microseconds()) / 1000,
				Clients: pt.Clients, Txns: pt.Txns,
				TxnsPerSec: pt.TxnsPerSec, MeanLatUS: us(pt.MeanLatency),
				MsgsPerTxn: pt.MsgsPerTxn, DecPerTxn: pt.DecisionsPerTxn,
				RecsPerTxn: pt.DecisionRecsPerTxn, MeanEpoch: pt.MeanEpoch,
				P50US: us(pt.LatencyP50), P95US: us(pt.LatencyP95), P99US: us(pt.LatencyP99),
			})
		}
	}
	if b.jsonOut {
		out := struct {
			Experiment string `json:"experiment"`
			Seed       int64  `json:"seed"`
			Rows       []row  `json:"rows"`
		}{"E21 epoch-batched commit scheduling", seed, rows}
		enc := json.NewEncoder(b.w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(b.w, "seed: %d\n", seed)
	fmt.Fprintf(b.w, "%7s %6s | %9s %12s %10s | %13s %10s %9s | %9s %9s %9s\n",
		"clients", "epoch", "txns/s", "meanLatency", "msgs/txn", "decisions/txn", "recs/txn", "meanEpoch",
		"p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(b.w, "%7d %6v | %9.0f %12s %10.2f | %13.2f %10.3f %9.1f | %9s %9s %9s\n",
			r.Clients, r.Epoch, r.TxnsPerSec,
			time.Duration(r.MeanLatUS*1000).Round(time.Microsecond),
			r.MsgsPerTxn, r.DecPerTxn, r.RecsPerTxn, r.MeanEpoch,
			time.Duration(r.P50US*1000).Round(time.Microsecond),
			time.Duration(r.P95US*1000).Round(time.Microsecond),
			time.Duration(r.P99US*1000).Round(time.Microsecond))
	}
	return nil
}

// readonly prints E10: the read-only optimization ablation.
func (b *bench) readonly() error {
	b.header("E10: read-only optimization ablation (3 sites, k read-only)")
	fmt.Fprintf(b.w, "%9s %10s | %10s %10s\n", "roSites", "optimized", "forces/txn", "msgs/txn")
	for _, ro := range []int{0, 1, 2, 3} {
		for _, opt := range []bool{false, true} {
			pt, err := experiments.MeasureReadOnly(ro, opt, 20)
			if err != nil {
				return err
			}
			fmt.Fprintf(b.w, "%9d %10v | %10.2f %10.2f\n", pt.ReadOnlySites, pt.Optimized, pt.ForcesPerTxn, pt.MsgsPerTxn)
		}
	}
	return nil
}
