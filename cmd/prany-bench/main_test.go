package main

import (
	"os"
	"strings"
	"testing"
)

// golden compares one deterministic section's output byte-for-byte against
// its checked-in table. Regenerate with:
//
//	go run ./cmd/prany-bench -run <section> > cmd/prany-bench/testdata/<section>.golden
func golden(t *testing.T, section string) {
	t.Helper()
	var out strings.Builder
	if code := run([]string{"-run", section}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	want, err := os.ReadFile("testdata/" + section + ".golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("section %s drifted from golden:\n--- got ---\n%s--- want ---\n%s", section, out.String(), want)
	}
}

// TestGoldenTheorem1 pins E5: the Theorem 1 violation table is a logical
// count, fully deterministic.
func TestGoldenTheorem1(t *testing.T) { golden(t, "theorem1") }

// TestGoldenTheorem2 pins E6: retention growth is linear in txns under
// C2PC and identically zero under PrAny.
func TestGoldenTheorem2(t *testing.T) { golden(t, "theorem2") }

// TestCostsAllMatch runs E1-E4 and requires every measured row to MATCH
// the analytic cost model — the table's values are logical counts, so any
// MISMATCH is a protocol regression, not noise.
func TestCostsAllMatch(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-run", "costs"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	if strings.Contains(s, "MISMATCH") {
		t.Fatalf("cost model mismatch:\n%s", s)
	}
	if got := strings.Count(s, "MATCH"); got != 26 { // 13 mixes x 2 outcomes
		t.Fatalf("want 26 MATCH rows, got %d:\n%s", got, s)
	}
}

// TestRunUnknownSection exits 2 and names the valid sections.
func TestRunUnknownSection(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-run", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `unknown section "frob"`) {
		t.Fatalf("missing error:\n%s", out.String())
	}
}
