package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// golden compares one deterministic section's output byte-for-byte against
// its checked-in table. Regenerate with:
//
//	go run ./cmd/prany-bench -run <section> > cmd/prany-bench/testdata/<section>.golden
func golden(t *testing.T, section string) {
	t.Helper()
	var out strings.Builder
	if code := run([]string{"-run", section}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	want, err := os.ReadFile("testdata/" + section + ".golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("section %s drifted from golden:\n--- got ---\n%s--- want ---\n%s", section, out.String(), want)
	}
}

// TestGoldenTheorem1 pins E5: the Theorem 1 violation table is a logical
// count, fully deterministic.
func TestGoldenTheorem1(t *testing.T) { golden(t, "theorem1") }

// TestGoldenTheorem2 pins E6: retention growth is linear in txns under
// C2PC and identically zero under PrAny.
func TestGoldenTheorem2(t *testing.T) { golden(t, "theorem2") }

// TestCostsAllMatch runs E1-E4 and requires every measured row to MATCH
// the analytic cost model — the table's values are logical counts, so any
// MISMATCH is a protocol regression, not noise.
func TestCostsAllMatch(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-run", "costs"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	if strings.Contains(s, "MISMATCH") {
		t.Fatalf("cost model mismatch:\n%s", s)
	}
	if got := strings.Count(s, "MATCH"); got != 26 { // 13 mixes x 2 outcomes
		t.Fatalf("want 26 MATCH rows, got %d:\n%s", got, s)
	}
}

// TestConsensusJSONShape pins the BENCH_consensus.json format: the E19
// section with -json must emit the {experiment, seed, rows} document with
// one row per (clients, acceptors) cell and live numbers in every row. The
// values themselves are timing-dependent; the shape and invariants (the
// replicated rows pay more messages and forces) are not.
func TestConsensusJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 4 TCP cluster workloads; skipped with -short")
	}
	var out strings.Builder
	if code := run([]string{"-run", "consensus", "-json"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	type row struct {
		Acceptors    int     `json:"acceptors"`
		Clients      int     `json:"clients"`
		Txns         int     `json:"txns"`
		TxnsPerSec   float64 `json:"txns_per_sec"`
		MsgsPerTxn   float64 `json:"msgs_per_txn"`
		ForcesPerTxn float64 `json:"forces_per_txn"`
		P50US        float64 `json:"latency_p50_us"`
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
		Rows       []row  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("not the BENCH_consensus.json shape: %v\n%s", err, out.String())
	}
	if doc.Experiment != "E19 replicated vs single decision cost" || doc.Seed == 0 {
		t.Fatalf("bad header: %q seed=%d", doc.Experiment, doc.Seed)
	}
	if len(doc.Rows) != 4 {
		t.Fatalf("want 4 rows (2 client levels x {0,3} acceptors), got %d", len(doc.Rows))
	}
	for i := 0; i < len(doc.Rows); i += 2 {
		single, repl := doc.Rows[i], doc.Rows[i+1]
		if single.Acceptors != 0 || repl.Acceptors != 3 || single.Clients != repl.Clients {
			t.Fatalf("row pairing broken: %+v / %+v", single, repl)
		}
		for _, r := range []row{single, repl} {
			if r.Txns <= 0 || r.TxnsPerSec <= 0 || r.P50US <= 0 {
				t.Fatalf("degenerate row: %+v", r)
			}
		}
		if repl.MsgsPerTxn <= single.MsgsPerTxn || repl.ForcesPerTxn <= single.ForcesPerTxn {
			t.Fatalf("replication should cost messages and forces: %+v vs %+v", single, repl)
		}
	}
}

// TestRunUnknownSection exits 2 and names the valid sections.
func TestRunUnknownSection(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-run", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `unknown section "frob"`) {
		t.Fatalf("missing error:\n%s", out.String())
	}
}

// TestEpochJSONShape pins the BENCH_epoch.json format: the E21 section with
// -json must emit the {experiment, seed, rows} document with one row per
// (clients, epoch) cell and live numbers in every row. The throughputs are
// timing-dependent; the shape and the logical/physical invariants are not:
// logical decisions are one per txn in both modes, while the epoch-on rows
// must batch them into strictly fewer physical records.
func TestEpochJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 4 TCP cluster workloads; skipped with -short")
	}
	var out strings.Builder
	if code := run([]string{"-run", "epoch", "-json"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	type row struct {
		Epoch      bool    `json:"epoch"`
		Clients    int     `json:"clients"`
		Txns       int     `json:"txns"`
		TxnsPerSec float64 `json:"txns_per_sec"`
		MsgsPerTxn float64 `json:"msgs_per_txn"`
		DecPerTxn  float64 `json:"decisions_per_txn"`
		RecsPerTxn float64 `json:"decision_records_per_txn"`
		MeanEpoch  float64 `json:"mean_epoch"`
		P50US      float64 `json:"latency_p50_us"`
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
		Rows       []row  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("not the BENCH_epoch.json shape: %v\n%s", err, out.String())
	}
	if doc.Experiment != "E21 epoch-batched commit scheduling" || doc.Seed == 0 {
		t.Fatalf("bad header: %q seed=%d", doc.Experiment, doc.Seed)
	}
	if len(doc.Rows) != 4 {
		t.Fatalf("want 4 rows (2 client levels x epoch off/on), got %d", len(doc.Rows))
	}
	for i := 0; i < len(doc.Rows); i += 2 {
		off, on := doc.Rows[i], doc.Rows[i+1]
		if off.Epoch || !on.Epoch || off.Clients != on.Clients {
			t.Fatalf("row pairing broken: %+v / %+v", off, on)
		}
		for _, r := range []row{off, on} {
			if r.Txns <= 0 || r.TxnsPerSec <= 0 || r.P50US <= 0 {
				t.Fatalf("degenerate row: %+v", r)
			}
			// One logical decision per txn in both modes: the protocol is
			// unchanged, only its durable representation is batched.
			if r.DecPerTxn < 0.99 || r.DecPerTxn > 1.01 {
				t.Fatalf("logical decisions drifted: %+v", r)
			}
		}
		if on.RecsPerTxn >= off.RecsPerTxn || on.MeanEpoch <= 1.0 {
			t.Fatalf("epoch-on row did not batch decision records: off %+v on %+v", off, on)
		}
	}
}
