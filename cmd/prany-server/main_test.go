package main

import (
	"strings"
	"testing"
)

func TestPeerFlagsParse(t *testing.T) {
	var f peerFlags
	if err := f.Set("coord=127.0.0.1:7100"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("other=10.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	if f.addrs["coord"] != "127.0.0.1:7100" {
		t.Fatalf("coord addr %q", f.addrs["coord"])
	}
	if !strings.Contains(f.String(), "coord=127.0.0.1:7100") {
		t.Fatalf("String() = %q", f.String())
	}
}

func TestPeerFlagsRejectMalformed(t *testing.T) {
	var f peerFlags
	if err := f.Set("noequals"); err == nil {
		t.Fatal("malformed peer accepted")
	}
}
