// Command prany-server runs one participant site over TCP: a key-value
// resource manager fronted by one of the three 2PC-variant participant
// engines, with a file-backed write-ahead log. Several servers plus one
// prany-coord form a real multi-process multidatabase.
//
// Usage:
//
//	prany-server -id hotel -proto pra -listen :7101 -wal hotel.wal \
//	             -peer coord=127.0.0.1:7100
//
// Restarting the server on the same -wal file runs the participant
// recovery procedure: in-doubt transactions re-acquire their locks and
// inquire at the coordinator recorded in their prepared records.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prany/internal/core"
	"prany/internal/metrics"
	"prany/internal/obs"
	"prany/internal/site"
	"prany/internal/transport"
	"prany/internal/wal"
	"prany/internal/wire"
)

func main() {
	id := flag.String("id", "", "site identifier (required)")
	protoName := flag.String("proto", "pra", "participant protocol: prn, pra or prc")
	listen := flag.String("listen", ":7101", "listen address")
	walPath := flag.String("wal", "", "write-ahead log file (default <id>.wal)")
	var peers peerFlags
	flag.Var(&peers, "peer", "peer address as site=host:port (repeatable; the coordinator must be listed)")
	acceptorsFlag := flag.String("acceptors", "", "replicated-decision acceptor set as name=host:port,... ; if this site's -id is in the set it runs an acceptor engine, and its participant escalates stuck inquiries to the set")
	tick := flag.Duration("tick", 500*time.Millisecond, "retry interval for in-doubt inquiries")
	httpAddr := flag.String("http", "", "introspection listen address (e.g. :7171): /metrics, /txns, /trace, /debug/pprof/")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint the WAL after this many forced records (0 disables; keeps recovery scans O(active))")
	traceCap := flag.Int("trace-buf", 1<<14, "trace ring-buffer capacity in events (with -http)")
	flag.Parse()

	if *id == "" {
		log.Fatal("prany-server: -id is required")
	}
	proto, err := wire.ParseProtocol(*protoName)
	if err != nil || !proto.ParticipantProtocol() {
		log.Fatalf("prany-server: bad -proto %q (want prn, pra or prc)", *protoName)
	}
	if *walPath == "" {
		*walPath = *id + ".wal"
	}
	acceptorIDs, acceptorAddrs, err := parseAcceptors(*acceptorsFlag)
	if err != nil {
		log.Fatal(err)
	}
	for aid, addr := range acceptorAddrs {
		if aid == wire.SiteID(*id) {
			continue // no self-dial entry needed
		}
		if peers.addrs == nil {
			peers.addrs = make(map[wire.SiteID]string)
		}
		peers.addrs[aid] = addr
	}

	met := metrics.NewRegistry()
	var rec *obs.Recorder
	if *httpAddr != "" {
		rec = obs.NewRecorder(*traceCap)
	}

	net, err := transport.NewTCPNetwork(transport.TCPOptions{
		Listen: *listen,
		Addrs:  peers.addrs,
		Logf:   log.Printf,
		Met:    met,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	store, err := wal.OpenFileStore(*walPath)
	if err != nil {
		log.Fatal(err)
	}
	s, err := site.New(site.Config{
		ID:              wire.SiteID(*id),
		Proto:           proto,
		Net:             net,
		LogStore:        store,
		Coordinator:     core.CoordinatorConfig{},
		CheckpointEvery: *ckptEvery,
		Acceptors:       acceptorIDs,
		Met:             met,
		Obs:             rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *httpAddr != "" {
		srv, err := obs.StartHTTP(*httpAddr, obs.Introspection{Met: met, Rec: rec, Txns: s.PTDump})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("introspection on http://%s", srv.Addr())
	}

	log.Printf("site %s (%s) serving on %s, wal=%s", *id, proto, net.Addr(), *walPath)
	if n := len(s.Participant().InDoubt()); n > 0 {
		log.Printf("recovered with %d in-doubt transaction(s); inquiring", n)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.Tick()
		case <-stop:
			log.Printf("site %s shutting down", *id)
			return
		}
	}
}

// parseAcceptors decodes the -acceptors list: comma-separated name=host:port
// entries naming the 2F+1 replicated-decision sites.
func parseAcceptors(s string) ([]wire.SiteID, map[wire.SiteID]string, error) {
	if s == "" {
		return nil, nil, nil
	}
	var ids []wire.SiteID
	addrs := make(map[wire.SiteID]string)
	for _, ent := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(ent, "=")
		if !ok || name == "" || addr == "" {
			return nil, nil, fmt.Errorf("-acceptors wants name=host:port entries, got %q", ent)
		}
		ids = append(ids, wire.SiteID(name))
		addrs[wire.SiteID(name)] = addr
	}
	return ids, addrs, nil
}

// peerFlags parses repeated site=addr flags.
type peerFlags struct {
	addrs map[wire.SiteID]string
}

func (p *peerFlags) String() string {
	var parts []string
	for id, a := range p.addrs {
		parts = append(parts, fmt.Sprintf("%s=%s", id, a))
	}
	return strings.Join(parts, ",")
}

func (p *peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want site=host:port, got %q", v)
	}
	if p.addrs == nil {
		p.addrs = make(map[wire.SiteID]string)
	}
	p.addrs[wire.SiteID(name)] = addr
	return nil
}
