package main

import (
	"regexp"
	"sort"
	"strings"
	"testing"
)

// ladderLines extracts the numbered ladder from a trace, strips the
// ordering numbers, and sorts. Concurrent sites interleave messages
// nondeterministically, so the stable observable is the multiset of
// ladder events, not their order.
func ladderLines(t *testing.T, out string) []string {
	t.Helper()
	re := regexp.MustCompile(`^\s*\d+\. (.*)$`)
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if m := re.FindStringSubmatch(l); m != nil {
			lines = append(lines, strings.Join(strings.Fields(m[1]), " "))
		}
	}
	sort.Strings(lines)
	return lines
}

func requireAll(t *testing.T, got []string, want []string) {
	t.Helper()
	have := map[string]int{}
	for _, l := range got {
		have[l]++
	}
	for _, w := range want {
		if have[w] == 0 {
			t.Fatalf("ladder missing %q; got:\n%s", w, strings.Join(got, "\n"))
		}
		have[w]--
	}
}

// TestRunHomogeneousCommit checks the PrN commit ladder of Figure 2: both
// participants force a prepared record and the decision, vote yes, receive
// COMMIT, and ack; the coordinator forces initiation and commit.
func TestRunHomogeneousCommit(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-protocol", "prn", "-outcome", "commit", "-n", "2"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "Trace: PrN, commit case, participants: p1(PrN) p2(PrN)") {
		t.Fatalf("missing trace header:\n%s", s)
	}
	if !strings.Contains(s, "totals: ") {
		t.Fatalf("missing totals line:\n%s", s)
	}
	requireAll(t, ladderLines(t, s), []string{
		"coord --PREPARE--> p1",
		"coord --PREPARE--> p2",
		"p1 --VOTE yes--> coord",
		"p2 --VOTE yes--> coord",
		"coord --DECISION commit--> p1",
		"coord --DECISION commit--> p2",
		"p1 --ACK commit--> coord",
		"p2 --ACK commit--> coord",
		"coord FORCE-write commit record",
		"p1 FORCE-write prepared record",
		"p2 FORCE-write prepared record",
		"p1 FORCE-write commit record",
		"p2 FORCE-write commit record",
	})
}

// TestRunMixedAbort traces the PrAny abort case: the poisoned PrC site
// votes no, the decision fans out, and the PrA participant never acks the
// abort (it presumes it) while PrN must; the no-voter aborts unilaterally
// and is sent no decision at all.
func TestRunMixedAbort(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-protocol", "prany", "-outcome", "abort"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "Trace: PrAny, abort case, participants: pn(PrN) pa(PrA) pc(PrC)") {
		t.Fatalf("missing trace header:\n%s", s)
	}
	got := ladderLines(t, s)
	requireAll(t, got, []string{
		"pc --VOTE no--> coord",
		"coord --DECISION abort--> pn",
		"coord --DECISION abort--> pa",
		"pn --ACK abort--> coord",
		"coord FORCE-write initiation record [pn:PrN pa:PrA pc:PrC]",
	})
	for _, l := range got {
		if strings.HasPrefix(l, "pa --ACK") {
			t.Fatalf("presumed-abort participant acked an abort: %q", l)
		}
	}
}

// TestRunUnknownProtocol exits 2 with a usage-style error.
func TestRunUnknownProtocol(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-protocol", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "unknown protocol") {
		t.Fatalf("missing error message:\n%s", out.String())
	}
}
