// Command prany-trace executes one transaction under a chosen protocol mix
// and prints the resulting message/logging ladder — an executable rendering
// of Figures 1-4 of "Atomicity with Incompatible Presumptions".
//
// Usage:
//
//	prany-trace -protocol prn|pra|prc|prany|iyv|cl [-outcome commit|abort] [-n 2]
//
// For prn/pra/prc the cluster is homogeneous with n participants; for prany
// it is one PrN, one PrA and one PrC participant (the mixed case of Figure
// 1). The trace interleaves every message with every log write, marking
// forced writes, exactly the vocabulary of the paper's figures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"prany/internal/sim"
	"prany/internal/wal"
	"prany/internal/wire"
	"prany/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("prany-trace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	proto := fs.String("protocol", "prany", "protocol to trace: prn, pra, prc or prany")
	outcome := fs.String("outcome", "commit", "commit or abort")
	n := fs.Int("n", 2, "participants for homogeneous traces")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec, label, err := clusterSpec(*proto, *n)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 2
	}
	cluster, err := sim.New(spec)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 1
	}
	defer cluster.Close()

	tr := newTracer()
	cluster.Net.OnSend(tr.message)
	cluster.Coord.Log().SetTap(tr.logWrite(sim.CoordID))
	for id, s := range cluster.Parts {
		s.Log().SetTap(tr.logWrite(id))
	}

	plan := workload.TxnPlan{Ops: map[wire.SiteID][]wire.Op{}}
	for _, id := range cluster.PartIDs() {
		plan.Sites = append(plan.Sites, id)
		plan.Ops[id] = []wire.Op{{Kind: wire.OpPut, Key: "k", Value: "v"}}
	}
	if *outcome == "abort" {
		plan.Abort = true
		plan.PoisonSite = plan.Sites[len(plan.Sites)-1]
	}

	res := cluster.RunPlan(plan)
	if res.Err != nil {
		fmt.Fprintln(stdout, res.Err)
		return 1
	}
	cluster.Quiesce(2 * time.Second)

	fmt.Fprintf(stdout, "Trace: %s, %s case, participants: %s\n\n", label, res.Outcome, partList(cluster))
	tr.print(stdout)

	fmt.Fprintln(stdout)
	tot := cluster.Met.Total()
	fmt.Fprintf(stdout, "totals: %d messages, %d forced writes, %d log records\n",
		tot.TotalMessages()-tot.Messages[wire.MsgExec]-tot.Messages[wire.MsgExecReply],
		tot.Forces, tot.Appends)
	if v := cluster.Violations(); len(v) != 0 {
		fmt.Fprintln(stdout, "VIOLATIONS:")
		for _, x := range v {
			fmt.Fprintln(stdout, "  -", x)
		}
		return 1
	}
	return 0
}

func clusterSpec(proto string, n int) (sim.Spec, string, error) {
	spec := sim.Spec{VoteTimeout: 200 * time.Millisecond}
	switch strings.ToLower(proto) {
	case "prn", "pra", "prc", "iyv", "cl":
		p, err := wire.ParseProtocol(proto)
		if err != nil {
			return spec, "", err
		}
		for i := 0; i < n; i++ {
			spec.Participants = append(spec.Participants,
				sim.PartSpec{ID: wire.SiteID(fmt.Sprintf("p%d", i+1)), Proto: p})
		}
		return spec, p.String(), nil
	case "prany":
		spec.Participants = []sim.PartSpec{
			{ID: "pn", Proto: wire.PrN}, {ID: "pa", Proto: wire.PrA}, {ID: "pc", Proto: wire.PrC},
		}
		return spec, "PrAny", nil
	default:
		return spec, "", fmt.Errorf("unknown protocol %q (want prn, pra, prc, iyv, cl or prany)", proto)
	}
}

func partList(c *sim.Cluster) string {
	var parts []string
	for _, p := range c.Spec.Participants {
		parts = append(parts, fmt.Sprintf("%s(%s)", p.ID, p.Proto))
	}
	return strings.Join(parts, " ")
}

// tracer collects messages and log writes into one ordered ladder.
type tracer struct {
	mu    sync.Mutex
	lines []string
}

func newTracer() *tracer { return &tracer{} }

func (t *tracer) message(m wire.Message) {
	if m.Kind == wire.MsgExec || m.Kind == wire.MsgExecReply {
		return // work-phase traffic; the figures start at PREPARE
	}
	detail := ""
	switch m.Kind {
	case wire.MsgVote:
		detail = " " + m.Vote.String()
		if len(m.Writes) > 0 {
			detail += fmt.Sprintf(" [+%d shipped writes]", len(m.Writes))
		}
	case wire.MsgDecision, wire.MsgAck:
		detail = " " + m.Outcome.String()
		if len(m.Writes) > 0 {
			detail += fmt.Sprintf(" [+%d shipped writes]", len(m.Writes))
		}
	}
	t.add(fmt.Sprintf("%-7s --%s%s--> %s", m.From, m.Kind, detail, m.To))
}

func (t *tracer) logWrite(id wire.SiteID) func(rec wal.Record, forced bool) {
	return func(rec wal.Record, forced bool) {
		mode := "write"
		if forced {
			mode = "FORCE-write"
		}
		extra := ""
		if rec.Kind == wal.KInitiation && len(rec.Participants) > 0 {
			var ps []string
			for _, pi := range rec.Participants {
				ps = append(ps, fmt.Sprintf("%s:%s", pi.ID, pi.Proto))
			}
			extra = " [" + strings.Join(ps, " ") + "]"
		}
		t.add(fmt.Sprintf("%-7s %s %s record%s", id, mode, rec.Kind, extra))
	}
}

func (t *tracer) add(line string) {
	t.mu.Lock()
	t.lines = append(t.lines, line)
	t.mu.Unlock()
}

func (t *tracer) print(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, l := range t.lines {
		fmt.Fprintf(w, "%3d. %s\n", i+1, l)
	}
}
