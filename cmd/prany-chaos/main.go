// Command prany-chaos runs seeded chaos episodes — deterministic fault
// plans (message drop/delay/duplication, partitions, protocol-step crashes,
// WAL sync failures) over a mixed PrN/PrA/PrC cluster — and judges every
// run against the paper's operational correctness criterion (Definition 1).
//
// Usage:
//
//	prany-chaos -episodes 200 -seed 1       # 200 PrAny episodes, seeds 1..200
//	prany-chaos -strategy u2pc -episodes 50 # watch Theorem 1 happen
//	prany-chaos -e14 -episodes 40           # E14 matrix: U2PC vs C2PC vs PrAny
//	prany-chaos -e14 -episodes 40 -json     # the same, as JSON (BENCH_chaos.json)
//	prany-chaos -byz -episodes 6            # E20 Byzantine tolerance matrix
//	prany-chaos -byz -episodes 6 -json      # the same, as JSON (BENCH_byz.json)
//
// Every episode's faults derive from its seed alone, so a failing run
// reproduces from the printed command.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"prany/internal/core"
	"prany/internal/experiments"
	"prany/internal/mcheck"
	"prany/internal/obs"
	"prany/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("prany-chaos", flag.ContinueOnError)
	fs.SetOutput(stdout)
	episodes := fs.Int("episodes", 20, "number of seeded episodes")
	seed := fs.Int64("seed", 1, "first seed; episode i uses seed+i")
	strategy := fs.String("strategy", "prany", "coordinator strategy: prany, u2pc, c2pc")
	native := fs.String("native", "prn", "native protocol for u2pc/c2pc")
	txns := fs.Int("txns", 12, "transactions per episode")
	quiesce := fs.Duration("quiesce", 8*time.Second, "convergence budget per episode")
	e14 := fs.Bool("e14", false, "run the E14 matrix (U2PC vs C2PC vs PrAny, same seeds)")
	byz := fs.Bool("byz", false, "run the E20 Byzantine tolerance matrix (seeded sweep + exhaustive cells)")
	jsonOut := fs.Bool("json", false, "with -e14/-byz: emit the matrix as JSON")
	verbose := fs.Bool("v", false, "print every episode's fault counters")
	trace := fs.Bool("trace", false, "record a per-txn trace; print its timeline for failing episodes (always with -episodes 1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *e14 {
		return runMatrix(stdout, *episodes, *seed, *txns, *jsonOut)
	}
	if *byz {
		return runByz(stdout, *episodes, *seed, *txns, *jsonOut)
	}

	strat, nat, err := parseStrategy(*strategy, *native)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 2
	}
	spec := experiments.ChaosSpec{Strategy: strat, Native: nat, Txns: *txns, Quiesce: *quiesce}

	fmt.Fprintf(stdout, "chaos: %d episodes, seeds %d..%d, strategy %s, %d txns each\n",
		*episodes, *seed, *seed+int64(*episodes)-1, *strategy, *txns)
	failed := 0
	for i := 0; i < *episodes; i++ {
		s := *seed + int64(i)
		if *trace {
			spec.Obs = obs.NewRecorder(0)
		}
		ep, err := experiments.RunChaosEpisode(s, spec)
		if err != nil {
			fmt.Fprintf(stdout, "seed %d: %v\n", s, err)
			return 1
		}
		verdict := "ok"
		if v := ep.Report.Violations(); v > 0 {
			verdict = fmt.Sprintf("FAIL (%d violations)", v)
			failed++
		}
		fmt.Fprintf(stdout, "seed %-6d commits=%-3d aborts=%-3d errors=%-3d crashes=%-2d %s\n",
			s, ep.Commits, ep.Aborts, ep.Errors, ep.Faults.Crashes, verdict)
		if *verbose {
			fmt.Fprintf(stdout, "  faults: drop=%d delay=%d dup=%d partition=%d walfail=%d\n",
				ep.Faults.Dropped, ep.Faults.Delayed, ep.Faults.Duplicated,
				ep.Faults.Partitioned, ep.Faults.WALFails)
		}
		if verdict != "ok" {
			for _, line := range strings.Split(ep.Report.Summary(), "\n") {
				fmt.Fprintf(stdout, "  %s\n", line)
			}
			fmt.Fprintf(stdout, "  repro: go run ./cmd/prany-chaos -episodes 1 -trace -seed %d -strategy %s -native %s -txns %d\n",
				s, *strategy, *native, *txns)
		}
		if *trace && (verdict != "ok" || *episodes == 1) {
			fmt.Fprintf(stdout, "timeline (seed %d):\n", s)
			for _, line := range strings.Split(strings.TrimRight(spec.Obs.Timeline(), "\n"), "\n") {
				fmt.Fprintf(stdout, "  %s\n", line)
			}
		}
	}
	fmt.Fprintf(stdout, "\n%d/%d episodes operationally correct\n", *episodes-failed, *episodes)
	if failed > 0 {
		return 1
	}
	return 0
}

// runMatrix prints (or emits as JSON) the E14 table: the same seeded fault
// plans under U2PC, C2PC and PrAny, with each strategy's measured failure
// counts — Theorems 1 and 2 as rates instead of single scripted schedules.
func runMatrix(stdout io.Writer, episodes int, seed int64, txns int, jsonOut bool) int {
	seeds := make([]int64, episodes)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	// C2PC never quiesces, so the matrix caps each episode's convergence
	// budget; PrAny converges well inside it.
	rows, err := experiments.ChaosMatrix(seeds, txns, 1500*time.Millisecond)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 1
	}
	if jsonOut {
		out := struct {
			Experiment string                       `json:"experiment"`
			SeedStart  int64                        `json:"seed_start"`
			Episodes   int                          `json:"episodes"`
			Txns       int                          `json:"txns_per_episode"`
			Rows       []experiments.ChaosMatrixRow `json:"rows"`
		}{"E14 chaos matrix", seed, episodes, txns, rows}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stdout, err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "E14: chaos matrix — %d episodes each, seeds %d..%d, %d txns/episode\n",
		episodes, seed, seed+int64(episodes)-1, txns)
	fmt.Fprintf(stdout, "%-12s %8s %8s %8s %8s %8s | %9s %9s %9s\n",
		"strategy", "commits", "aborts", "errors", "crashes", "dropped",
		"atomicity", "retention", "opcheck")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-12s %8d %8d %8d %8d %8d | %9d %9d %9d\n",
			r.Strategy, r.Commits, r.Aborts, r.Errors, r.Crashes, r.Dropped,
			r.AtomicityViolations, r.RetentionLeaks, r.OpcheckViolations)
	}
	return 0
}

// runByz prints (or emits as JSON) the E20 Byzantine tolerance matrix: the
// seeded sweep — each strategy × each adversary behavior at the Byzantine
// participant over the same seeds — plus the bounded-exhaustive mcheck
// cells with their minimal-lie counterexamples, and the combined verdict
// (PrAny keeps every honest site whole under any lying participant).
func runByz(stdout io.Writer, episodes int, seed int64, txns int, jsonOut bool) int {
	seeds := make([]int64, episodes)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	// Same reasoning as E14: C2PC cells never quiesce, so the convergence
	// budget per episode is capped.
	rows, err := experiments.ByzSeededMatrix(seeds, txns, 1200*time.Millisecond)
	if err != nil {
		fmt.Fprintln(stdout, err)
		return 1
	}
	cells := experiments.ByzMcheck()
	verdictErr := experiments.ByzVerdict(rows, cells)

	if jsonOut {
		out := struct {
			Experiment  string               `json:"experiment"`
			SeedStart   int64                `json:"seed_start"`
			Episodes    int                  `json:"episodes"`
			Txns        int                  `json:"txns_per_episode"`
			ByzSite     string               `json:"byz_site"`
			SeededRows  []experiments.ByzRow `json:"seeded_rows"`
			McheckCells []*mcheck.Result     `json:"mcheck_cells"`
			Verdict     string               `json:"verdict"`
		}{"E20 Byzantine tolerance matrix", seed, episodes, txns,
			string(experiments.ByzSite), rows, cells, "pass"}
		if verdictErr != nil {
			out.Verdict = verdictErr.Error()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stdout, err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "E20: Byzantine tolerance matrix — %d episodes/cell, seeds %d..%d, %d txns/episode, byz site %s\n",
			episodes, seed, seed+int64(episodes)-1, txns, experiments.ByzSite)
		fmt.Fprintf(stdout, "%-12s %-4s %8s %8s %8s %8s | %7s %7s %10s\n",
			"strategy", "byz", "commits", "aborts", "errors", "forged",
			"honest", "spread", "contained")
		for _, r := range rows {
			fmt.Fprintf(stdout, "%-12s %-4s %8d %8d %8d %8d | %7d %7d %10d\n",
				r.Strategy, r.Behavior, r.Commits, r.Aborts, r.Errors, r.Forged,
				r.Honest, r.Spread, r.Contained)
		}
		fmt.Fprintf(stdout, "\nexhaustive cells (t1, skip-0 plans):\n")
		fmt.Fprintf(stdout, "%-28s %9s %10s %7s %7s %10s\n",
			"config", "schedules", "violating", "honest", "spread", "contained")
		for _, c := range cells {
			fmt.Fprintf(stdout, "%-28s %9d %10d %7d %7d %10d\n",
				c.Label, c.Schedules, c.Violating, c.HonestViolating, c.SpreadViolating, c.ContainedViolating)
			for _, cex := range c.Counterexamples {
				fmt.Fprintf(stdout, "  %s counterexample: %s\n", cex.Kind, cex.Schedule)
				break // one per cell keeps the table readable; JSON carries them all
			}
		}
		if verdictErr != nil {
			fmt.Fprintf(stdout, "\nFAIL: %v\n", verdictErr)
		} else {
			fmt.Fprintf(stdout, "\npass: PrAny honest sites clean under every lying participant; straw-man defeats and the lying-decider boundary demonstrated\n")
		}
	}
	if verdictErr != nil {
		return 1
	}
	return 0
}

func parseStrategy(s, native string) (core.Strategy, wire.Protocol, error) {
	nat, err := wire.ParseProtocol(native)
	if err != nil {
		return 0, 0, err
	}
	switch strings.ToLower(s) {
	case "prany":
		return core.StrategyPrAny, nat, nil
	case "u2pc":
		return core.StrategyU2PC, nat, nil
	case "c2pc":
		return core.StrategyC2PC, nat, nil
	}
	return 0, 0, fmt.Errorf("unknown strategy %q (want prany, u2pc or c2pc)", s)
}
