package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSingleEpisode runs one seeded PrAny episode: deterministic by
// construction, it must judge operationally correct and exit 0.
func TestRunSingleEpisode(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-episodes", "1", "-seed", "1", "-txns", "4", "-v"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"chaos: 1 episodes, seeds 1..1, strategy prany, 4 txns each",
		"seed 1",
		"faults: drop=",
		"1/1 episodes operationally correct",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

// TestRunUnknownStrategy exits 2 with a usage error.
func TestRunUnknownStrategy(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-strategy", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "unknown strategy") {
		t.Fatalf("missing error:\n%s", out.String())
	}
}

// TestRunMatrixJSON runs a tiny E14 matrix and checks the JSON shape the
// BENCH_chaos.json artifact is generated from.
func TestRunMatrixJSON(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-e14", "-episodes", "2", "-seed", "1", "-txns", "4", "-json"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	var got struct {
		Experiment string `json:"experiment"`
		Episodes   int    `json:"episodes"`
		Rows       []struct {
			Strategy string `json:"strategy"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if got.Experiment != "E14 chaos matrix" || got.Episodes != 2 || len(got.Rows) != 3 {
		t.Fatalf("unexpected matrix shape: %+v", got)
	}
}
