package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunSingleEpisode runs one seeded PrAny episode: deterministic by
// construction, it must judge operationally correct and exit 0.
func TestRunSingleEpisode(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-episodes", "1", "-seed", "1", "-txns", "4", "-v"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"chaos: 1 episodes, seeds 1..1, strategy prany, 4 txns each",
		"seed 1",
		"faults: drop=",
		"1/1 episodes operationally correct",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

// TestRunUnknownStrategy exits 2 with a usage error.
func TestRunUnknownStrategy(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-strategy", "frob"}, &out); code != 2 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "unknown strategy") {
		t.Fatalf("missing error:\n%s", out.String())
	}
}

// TestRunMatrixJSON runs a tiny E14 matrix and checks the JSON shape the
// BENCH_chaos.json artifact is generated from.
func TestRunMatrixJSON(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-e14", "-episodes", "2", "-seed", "1", "-txns", "4", "-json"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	var got struct {
		Experiment string `json:"experiment"`
		Episodes   int    `json:"episodes"`
		Rows       []struct {
			Strategy string `json:"strategy"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if got.Experiment != "E14 chaos matrix" || got.Episodes != 2 || len(got.Rows) != 3 {
		t.Fatalf("unexpected matrix shape: %+v", got)
	}
}

// TestByzJSONShape pins the committed BENCH_byz.json artifact (regenerated
// by scripts/bench_smoke.sh with -byz -episodes 2 -seed 1 -txns 8 -json):
// the E20 document shape, the seeded sweep's 3x4 (strategy, behavior) grid,
// the 16 exhaustive cells, the passing verdict, and the headline claims —
// PrAny's honest sites stay whole under every lying participant, and at
// least one cell carries a replayable +byz= counterexample.
func TestByzJSONShape(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_byz.json")
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		Strategy  string `json:"strategy"`
		Behavior  string `json:"behavior"`
		Episodes  int    `json:"episodes"`
		Honest    int    `json:"honest"`
		Spread    int    `json:"spread"`
		Contained int    `json:"contained"`
	}
	type cex struct {
		Schedule string `json:"schedule"`
	}
	type cell struct {
		Label           string `json:"label"`
		Schedules       int    `json:"schedules"`
		Violating       int    `json:"violating"`
		HonestViolating int    `json:"honest_violating"`
		SpreadViolating int    `json:"spread_violating"`
		Truncated       bool   `json:"truncated"`
		Counterexamples []cex  `json:"counterexamples"`
	}
	var doc struct {
		Experiment  string `json:"experiment"`
		ByzSite     string `json:"byz_site"`
		SeededRows  []row  `json:"seeded_rows"`
		McheckCells []cell `json:"mcheck_cells"`
		Verdict     string `json:"verdict"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Experiment != "E20 Byzantine tolerance matrix" || doc.ByzSite != "pc" {
		t.Fatalf("unexpected header: experiment=%q byz_site=%q", doc.Experiment, doc.ByzSite)
	}
	if doc.Verdict != "pass" {
		t.Fatalf("committed artifact's verdict = %q, want pass", doc.Verdict)
	}
	if len(doc.SeededRows) != 12 { // 3 strategies x 4 behaviors
		t.Fatalf("seeded rows = %d, want 12", len(doc.SeededRows))
	}
	behaviors := map[string]int{}
	for _, r := range doc.SeededRows {
		if r.Episodes <= 0 {
			t.Fatalf("row %s/%s ran no episodes", r.Strategy, r.Behavior)
		}
		behaviors[r.Behavior]++
		if r.Strategy == "PrAny" && (r.Honest != 0 || r.Spread != 0) {
			t.Fatalf("PrAny byz=%s: honest=%d spread=%d, want 0/0", r.Behavior, r.Honest, r.Spread)
		}
	}
	for _, b := range []string{"eq", "li", "sa", "vf"} {
		if behaviors[b] != 3 {
			t.Fatalf("behavior %s appears in %d rows, want 3", b, behaviors[b])
		}
	}
	if len(doc.McheckCells) != 16 {
		t.Fatalf("mcheck cells = %d, want 16", len(doc.McheckCells))
	}
	replayable := false
	for _, c := range doc.McheckCells {
		if c.Truncated || c.Schedules <= 0 {
			t.Fatalf("cell %s: truncated=%v schedules=%d", c.Label, c.Truncated, c.Schedules)
		}
		if c.HonestViolating != 0 {
			t.Fatalf("cell %s: %d honest-site untainted violations in the committed artifact", c.Label, c.HonestViolating)
		}
		if strings.HasPrefix(c.Label, "PrAny") && !strings.Contains(c.Label, "+byz=coord:") && c.SpreadViolating != 0 {
			t.Fatalf("cell %s: spread=%d, want 0", c.Label, c.SpreadViolating)
		}
		for _, x := range c.Counterexamples {
			if strings.Contains(x.Schedule, "+byz=") {
				replayable = true
			}
		}
	}
	if !replayable {
		t.Fatal("no cell carries a replayable +byz= counterexample")
	}
}
