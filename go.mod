module prany

go 1.22
