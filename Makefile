GO ?= go

.PHONY: all build test vet race chaos examples bench-smoke obs-smoke recovery-smoke consensus-smoke byz-smoke epoch-smoke tier1 cover allocs bench-groupcommit bench-pipeline bench-recovery bench-consensus bench-epoch mcheck-paxos mcheck-byz clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race pass over the packages with real concurrency: the group-commit
# flusher, the sharded protocol tables, the parallel fan-out and the TCP
# transport. -short keeps the stress test tractable in CI.
race:
	$(GO) test -race -short ./internal/core/... ./internal/transport/... ./internal/wal/...

# Seeded chaos sweep: random fault plans over a mixed cluster under PrAny
# must converge to operational correctness, and the theorem-signal plan
# must reproduce the U2PC/C2PC failures. -short keeps it to a few seeds;
# `go run ./cmd/prany-chaos` runs the full-length version.
chaos:
	$(GO) test -race -short -run 'TestChaos' ./internal/experiments/

# Smoke-run every example program: each must exit 0. The examples are the
# public face of the API, so a crashing example is a tier-1 failure even
# when the library tests pass.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# Short E16 smoke run: a 50-transaction TCP burst with batching on must
# show > 1 messages per physical frame, so a regression that silently
# disables the transport batch writer fails the gate without paying for
# the full benchmark sweep.
bench-smoke:
	./scripts/bench_smoke.sh

# Observability smoke: start prany-server with -http and assert that
# /metrics, /txns, /trace and /debug/pprof/ all serve well-formed output.
obs-smoke:
	$(GO) run ./scripts/obssmoke

# Recovery smoke: crash a loaded cluster with checkpointing off and on and
# assert (via the recovery metrics) that the checkpointed recovery scan is
# O(active), not O(history) — the E18 claim as a merge gate.
recovery-smoke:
	$(GO) run ./scripts/recoverysmoke

# Consensus smoke: 3 acceptors + coordinator + 2 participants; the
# coordinator is killed for good mid-decision and the acceptor takeover
# must still finish the quorum-fixed commit — the E19 non-blocking claim
# as a merge gate.
consensus-smoke:
	$(GO) run ./scripts/consensussmoke

# Byzantine smoke: a short seeded E20 sweep — every strategy under every
# adversary behavior at the lying participant — must keep PrAny's honest
# sites free of atomicity damage (zero Honest/Spread attributions) while
# the adversary demonstrably forges. The E20 claim as a merge gate.
byz-smoke:
	$(GO) run ./scripts/byzsmoke

# Epoch smoke: a real-TCP cluster with the epoch sealer on (2ms linger) has
# its coordinator killed while commits are in flight; after recovery, every
# member of every batched epoch record must land on the WAL-fixed outcome at
# every participant — the E21 crash contract as a merge gate.
epoch-smoke:
	$(GO) run ./scripts/epochsmoke

# tier1 is the merge gate: everything must build, every test must pass,
# vet must be clean, the concurrent packages must be race-free, the short
# chaos sweep must stay operationally correct, every example must run,
# the transport batch writer must demonstrably coalesce frames, the
# introspection endpoints must serve, checkpointed recovery must stay
# O(active), the replicated decider must survive coordinator death,
# PrAny's honest sites must survive a lying participant, and epoch-sealed
# decisions must survive a mid-epoch coordinator kill.
tier1: build test vet race chaos examples bench-smoke obs-smoke recovery-smoke consensus-smoke byz-smoke epoch-smoke

# cover enforces the per-package statement-coverage floors recorded in
# coverage.floors and the per-benchmark allocation ceilings in
# alloc.floors; `make cover` fails if any listed package regresses.
cover:
	./scripts/cover.sh
	./scripts/allocs.sh

# allocs runs just the allocation-ceiling gate (the zero-alloc wire path).
allocs:
	./scripts/allocs.sh

# Reproduce the E13 group-commit numbers recorded in BENCH_groupcommit.json.
bench-groupcommit:
	$(GO) test -bench 'BenchmarkE13_GroupCommit' -benchtime 300x -run '^$$' .

# Reproduce the E16 pipelined-commit-stream numbers recorded in
# BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -bench 'BenchmarkE16_Pipeline' -benchtime 5000x -run '^$$' .

# Reproduce the E18 recovery-cost numbers recorded in BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/prany-bench -run recovery -json

# Reproduce the E19 replicated-decision numbers recorded in
# BENCH_consensus.json.
bench-consensus:
	$(GO) run ./cmd/prany-bench -run consensus -json

# Reproduce the E21 epoch-batched commit numbers recorded in
# BENCH_epoch.json.
bench-epoch:
	$(GO) run ./cmd/prany-bench -run epoch -json

# Exhaustively check the E19 claim: the replicated decider sweeps clean and
# non-blocking under permanent coordinator death; the single decider blocks.
mcheck-paxos:
	$(GO) run ./cmd/prany-check -strategy prany-paxos

# Exhaustively check the E20 claim for PrAny: no schedule of any adversary
# behavior at the Byzantine participant damages an honest site.
mcheck-byz:
	$(GO) run ./cmd/prany-check -strategy prany-byz

clean:
	$(GO) clean ./...
