GO ?= go

.PHONY: all build test vet race tier1 bench-groupcommit clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race pass over the packages with real concurrency: the group-commit
# flusher, the sharded protocol tables, the parallel fan-out and the TCP
# transport. -short keeps the stress test tractable in CI.
race:
	$(GO) test -race -short ./internal/core/... ./internal/transport/... ./internal/wal/...

# tier1 is the merge gate: everything must build, every test must pass,
# vet must be clean and the concurrent packages must be race-free.
tier1: build test vet race

# Reproduce the E13 group-commit numbers recorded in BENCH_groupcommit.json.
bench-groupcommit:
	$(GO) test -bench 'BenchmarkE13_GroupCommit' -benchtime 300x -run '^$$' .

clean:
	$(GO) clean ./...
