package prany

import (
	"fmt"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.VoteTimeout == 0 {
		cfg.VoteTimeout = 100 * time.Millisecond
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mixedConfig() ClusterConfig {
	return ClusterConfig{Participants: []ParticipantConfig{
		{ID: "hotel", Protocol: PrA},
		{ID: "airline", Protocol: PrC},
		{ID: "car", Protocol: PrN},
	}}
}

func TestQuickstartFlow(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	txn := c.Begin()
	if err := txn.Put("hotel", "room-42", "booked"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put("airline", "seat-17C", "booked"); err != nil {
		t.Fatal(err)
	}
	out, err := txn.Commit()
	if err != nil || out != Commit {
		t.Fatalf("outcome %v, %v", out, err)
	}
	if !c.Quiesce(3 * time.Second) {
		t.Fatal("did not quiesce")
	}
	if v, ok := c.Read("hotel", "room-42"); !ok || v != "booked" {
		t.Fatalf("hotel: %q %v", v, ok)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestReadInsideTransaction(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	setup := c.Begin()
	setup.Put("car", "fleet", "7")
	if out, err := setup.Commit(); err != nil || out != Commit {
		t.Fatalf("%v %v", out, err)
	}
	txn := c.Begin()
	v, err := txn.Get("car", "fleet")
	if err != nil || v != "7" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := txn.Delete("car", "fleet"); err != nil {
		t.Fatal(err)
	}
	if out, err := txn.Commit(); err != nil || out != Commit {
		t.Fatalf("%v %v", out, err)
	}
	c.Quiesce(2 * time.Second)
	if _, ok := c.Read("car", "fleet"); ok {
		t.Fatal("deleted key visible")
	}
}

func TestCrashRecoveryThroughFacade(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	txn := c.Begin()
	txn.Put("hotel", "k", "v")
	txn.Put("airline", "k", "v")
	if out, err := txn.Commit(); err != nil || out != Commit {
		t.Fatalf("%v %v", out, err)
	}
	if err := c.Crash("airline"); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover("airline"); err != nil {
		t.Fatal(err)
	}
	if !c.Quiesce(3 * time.Second) {
		t.Fatal("did not quiesce")
	}
	if v, ok := c.Read("airline", "k"); !ok || v != "v" {
		t.Fatalf("airline data %q %v", v, ok)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestEmptyTransactionCommits(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	out, err := c.Begin().Commit()
	if err != nil || out != Commit {
		t.Fatalf("%v %v", out, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Participants: []ParticipantConfig{{ID: "x", Protocol: PrAny}}}); err == nil {
		t.Fatal("PrAny as participant protocol accepted")
	}
}

func TestCrashUnknownSite(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	if err := c.Crash("ghost"); err == nil {
		t.Fatal("crash of unknown site accepted")
	}
	if err := c.Recover("ghost"); err == nil {
		t.Fatal("recover of unknown site accepted")
	}
}

func TestMetricsAndCheckpointExposed(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	txn := c.Begin()
	txn.Put("hotel", "a", "1")
	txn.Commit()
	c.Quiesce(2 * time.Second)
	if c.Metrics().Total().TotalMessages() == 0 {
		t.Fatal("no messages counted")
	}
	if c.History().Len() == 0 {
		t.Fatal("no history recorded")
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestU2PCStrategyExposed(t *testing.T) {
	cfg := mixedConfig()
	cfg.Strategy = StrategyU2PC
	cfg.Native = PrN
	c := newTestCluster(t, cfg)
	txn := c.Begin()
	txn.Put("hotel", "k", "v")
	if out, err := txn.Commit(); err != nil || out != Commit {
		t.Fatalf("%v %v", out, err)
	}
	c.Quiesce(2 * time.Second)
}

func TestManyTransactionsStayClean(t *testing.T) {
	c := newTestCluster(t, mixedConfig())
	for i := 0; i < 25; i++ {
		txn := c.Begin()
		for _, s := range c.Participants() {
			if err := txn.Put(s, fmt.Sprintf("k%d", i), "v"); err != nil {
				t.Fatal(err)
			}
		}
		if out, err := txn.Commit(); err != nil || out != Commit {
			t.Fatalf("txn %d: %v %v", i, out, err)
		}
	}
	if !c.Quiesce(3 * time.Second) {
		t.Fatal("did not quiesce")
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
