package prany

// One benchmark per experiment in DESIGN.md §4. The numbers that matter are
// the custom metrics (forces/txn, msgs/txn, retained/txn) — they are the
// protocol costs the paper's figures define — while ns/op gives the
// simulator's end-to-end latency shape. cmd/prany-bench prints the same
// data as readable tables; EXPERIMENTS.md records both.

import (
	"fmt"
	"testing"
	"time"

	"prany/internal/core"
	"prany/internal/experiments"
	"prany/internal/sim"
	"prany/internal/wire"
	"prany/internal/workload"
)

// benchCluster builds a cluster for a protocol mix and returns it with a
// per-iteration transaction runner.
func benchCluster(b *testing.B, mix []wire.Protocol, commit bool) (*sim.Cluster, func(i int)) {
	b.Helper()
	spec := sim.Spec{VoteTimeout: 500 * time.Millisecond}
	for i, p := range mix {
		spec.Participants = append(spec.Participants,
			sim.PartSpec{ID: wire.SiteID(fmt.Sprintf("p%d", i+1)), Proto: p})
	}
	cluster, err := sim.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	ids := cluster.PartIDs()
	run := func(i int) {
		txn := cluster.Coord.Begin()
		if !commit {
			cluster.Parts[ids[len(ids)-1]].Store().Poison(txn.ID())
		}
		for _, id := range ids {
			if err := txn.Put(id, fmt.Sprintf("k%d", i%64), "v"); err != nil {
				b.Fatal(err)
			}
		}
		want := wire.Commit
		if !commit {
			want = wire.Abort
		}
		if out, err := txn.Commit(); err != nil || out != want {
			b.Fatalf("outcome %v, %v", out, err)
		}
	}
	return cluster, run
}

// reportCosts attaches the per-transaction protocol cost metrics.
func reportCosts(b *testing.B, cluster *sim.Cluster, txns int) {
	b.Helper()
	if !cluster.Quiesce(10 * time.Second) {
		b.Fatal("cluster did not quiesce")
	}
	if v := cluster.Violations(); len(v) != 0 {
		b.Fatalf("correctness violated: %v", v[0])
	}
	tot := cluster.Met.Total()
	protoMsgs := tot.Messages[wire.MsgPrepare] + tot.Messages[wire.MsgVote] +
		tot.Messages[wire.MsgDecision] + tot.Messages[wire.MsgAck] + tot.Messages[wire.MsgInquiry]
	b.ReportMetric(float64(tot.Forces)/float64(txns), "forces/txn")
	b.ReportMetric(float64(protoMsgs)/float64(txns), "msgs/txn")
}

func benchProtocol(b *testing.B, mix []wire.Protocol, commit bool) {
	cluster, run := benchCluster(b, mix, commit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(i)
	}
	b.StopTimer()
	reportCosts(b, cluster, b.N)
}

// E1 — Figure 2 (basic 2PC / presumed nothing).
func BenchmarkE1_PrN_Commit(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrN, 4), true)
}
func BenchmarkE1_PrN_Abort(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrN, 4), false)
}

// E2 — Figure 3 (presumed abort).
func BenchmarkE2_PrA_Commit(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrA, 4), true)
}
func BenchmarkE2_PrA_Abort(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrA, 4), false)
}

// E3 — Figure 4 (presumed commit).
func BenchmarkE3_PrC_Commit(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrC, 4), true)
}
func BenchmarkE3_PrC_Abort(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.PrC, 4), false)
}

// E4 — Figure 1 (Presumed Any over a mixed PrN/PrA/PrC cluster).
func BenchmarkE4_PrAny_Commit(b *testing.B) { benchProtocol(b, experiments.MixedThirds(3), true) }
func BenchmarkE4_PrAny_Abort(b *testing.B)  { benchProtocol(b, experiments.MixedThirds(3), false) }

// E5 — Theorem 1: each iteration runs the full adversarial schedule
// (decision loss, crash, recovery, wrong answer) under U2PC and counts the
// violations it produces; violations/op must be ≥ 1.
func BenchmarkE5_U2PC_Violations(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Theorem1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			total += r.Violations
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "violations/op")
}

// E6 — Theorem 2: retained protocol-table entries per transaction under
// C2PC (must be 1.0: every mixed commit is retained forever) vs PrAny
// (must be 0).
func BenchmarkE6_C2PC_Retention(b *testing.B) {
	pt, err := experiments.Theorem2(core.StrategyC2PC, wire.PrN, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pt.Retained)/float64(b.N), "retained/txn")
	b.ReportMetric(float64(pt.StableRecords)/float64(b.N), "pinnedRecs/txn")
}

func BenchmarkE6_PrAny_Retention(b *testing.B) {
	pt, err := experiments.Theorem2(core.StrategyPrAny, wire.PrN, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pt.Retained)/float64(b.N), "retained/txn")
	b.ReportMetric(float64(pt.StableRecords)/float64(b.N), "pinnedRecs/txn")
}

// E7 — Theorem 3: a fault-injection sweep per iteration; violations/op must
// be 0 and quiesced 1.
func BenchmarkE7_PrAny_FaultSweep(b *testing.B) {
	violations, quiesced := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultSweep(core.StrategyPrAny, wire.PrN, 0.10, 10, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		violations += res.Violations
		if res.Quiesced {
			quiesced++
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "violations/op")
	b.ReportMetric(float64(quiesced)/float64(b.N), "quiesced/op")
}

// E8 — who wins: one sub-benchmark per protocol × commit ratio.
func BenchmarkE8_Throughput(b *testing.B) {
	mixes := map[string][]wire.Protocol{
		"PrN":   experiments.Homogeneous(wire.PrN, 3),
		"PrA":   experiments.Homogeneous(wire.PrA, 3),
		"PrC":   experiments.Homogeneous(wire.PrC, 3),
		"PrAny": experiments.MixedThirds(3),
	}
	for _, name := range []string{"PrN", "PrA", "PrC", "PrAny"} {
		for _, ratio := range []float64{1.0, 0.5, 0.0} {
			b.Run(fmt.Sprintf("%s/commit=%.0f%%", name, ratio*100), func(b *testing.B) {
				spec := sim.Spec{VoteTimeout: 500 * time.Millisecond}
				for i, p := range mixes[name] {
					spec.Participants = append(spec.Participants,
						sim.PartSpec{ID: wire.SiteID(fmt.Sprintf("p%d", i+1)), Proto: p})
				}
				cluster, err := sim.New(spec)
				if err != nil {
					b.Fatal(err)
				}
				defer cluster.Close()
				plans := workload.Generate(workload.Spec{
					Txns: b.N, SitesPerTxn: 3, OpsPerSite: 1,
					CommitFraction: ratio, KeySpace: 1 << 20, Seed: 5,
				}, cluster.PartIDs())
				b.ResetTimer()
				res := cluster.Run(plans)
				b.StopTimer()
				if res.Errors > 0 {
					b.Fatalf("%d errors", res.Errors)
				}
				reportCosts(b, cluster, b.N)
			})
		}
	}
}

// E10 — read-only optimization ablation.
func BenchmarkE10_ReadOnly(b *testing.B) {
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimized=%v", opt), func(b *testing.B) {
			pt, err := experiments.MeasureReadOnly(2, opt, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pt.ForcesPerTxn, "forces/txn")
			b.ReportMetric(pt.MsgsPerTxn, "msgs/txn")
		})
	}
}

// E11 — the implicit yes-vote extension: one-phase commits halve the
// protocol message count relative to the two-phase baseline.
func BenchmarkE11_IYV_Commit(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.IYV, 4), true)
}

func BenchmarkE11_IYV_Mixed(b *testing.B) {
	benchProtocol(b, []wire.Protocol{wire.IYV, wire.PrA, wire.PrC}, true)
}

// E12 — the coordinator-log extension: participants log nothing; the
// coordinator's log carries their write sets.
func BenchmarkE12_CL_Commit(b *testing.B) {
	benchProtocol(b, experiments.Homogeneous(wire.CL, 4), true)
}

func BenchmarkE12_CL_Mixed(b *testing.B) {
	benchProtocol(b, []wire.Protocol{wire.CL, wire.PrA, wire.PrC}, true)
}

// E13 — group commit: the same concurrent commit workload with the log's
// group-commit flusher off and on, over stores with simulated per-flush
// device latency. The logical force count (the protocol cost) is identical;
// the physical flush count per transaction collapses when concurrent forces
// coalesce.
func BenchmarkE13_GroupCommit(b *testing.B) {
	for _, gc := range []bool{false, true} {
		b.Run(fmt.Sprintf("group=%v", gc), func(b *testing.B) {
			pt, err := experiments.MeasureGroupCommit(gc, 16, b.N, time.Millisecond, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pt.TxnsPerSec, "txns/s")
			b.ReportMetric(pt.ForcesPerTxn, "forces/txn")
			b.ReportMetric(pt.SyncsPerTxn, "syncs/txn")
			b.ReportMetric(pt.CoordSyncsPerTxn, "coordsyncs/txn")
			b.ReportMetric(pt.MeanBatch, "recs/sync")
		})
	}
}

// E16 — pipelined commit streams: the same concurrent commit workload over
// real TCP with transport frame batching off and on. The logical message
// count (the protocol cost) is identical; the physical wire-write count per
// transaction collapses when each link's writer coalesces whatever queued
// while its previous write syscall was in flight.
func BenchmarkE16_Pipeline(b *testing.B) {
	for _, clients := range []int{16, 64, 256} {
		for _, batching := range []bool{false, true} {
			b.Run(fmt.Sprintf("clients=%d/batch=%v", clients, batching), func(b *testing.B) {
				pt, err := experiments.MeasurePipeline(batching, clients, b.N, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.TxnsPerSec, "txns/s")
				b.ReportMetric(pt.MsgsPerTxn, "msgs/txn")
				b.ReportMetric(pt.FramesPerTxn, "frames/txn")
				b.ReportMetric(pt.MeanFrameBatch, "msgs/frame")
				b.ReportMetric(pt.AllocsPerTxn, "allocs/txn")
				b.ReportMetric(float64(pt.LatencyP50)/1e6, "p50-ms")
				b.ReportMetric(float64(pt.LatencyP99)/1e6, "p99-ms")
			})
		}
	}
}

// Ablation — the forced initiation record: PrAny's extra coordinator force
// versus homogeneous PrA (which writes none). The delta is the price of
// integration.
func BenchmarkAblation_Initiation(b *testing.B) {
	b.Run("PrA-homogeneous", func(b *testing.B) {
		benchProtocol(b, experiments.Homogeneous(wire.PrA, 2), true)
	})
	b.Run("PrAny-mixed", func(b *testing.B) {
		benchProtocol(b, []wire.Protocol{wire.PrA, wire.PrC}, true)
	})
}
